// Package core implements the paper's primary contribution: the
// hardness reductions f_N (CLIQUE → QO_N, §4), f_H (⅔CLIQUE → QO_H, §5),
// their sparse-query-graph variants f_{N,e} and f_{H,e} (§6), and the
// end-to-end Theorem 9/15/16/17 pipelines from 3SAT, together with gap
// certificates that record the promised versus measured costs.
//
// Parameterization. The paper's selectivity base is α = Ω(4^{n^{1/δ}});
// all constructed quantities are powers of α. We parameterize by
// A = log₂ α, keeping every quantity an exact power of two (see
// DESIGN.md's substitution table), and express the paper's constants
// c and d through the integers ωYes = c·n and ωNo = (c−d)·n — the two
// sides of the CLIQUE promise.
package core

import (
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// FNParams parameterizes the f_N reduction.
type FNParams struct {
	// A = log₂ α. The paper uses α = 4^{n^{1/δ}}; Theorem 9's gap factor
	// is α^{Θ(n)}, so any A ≥ 2 exhibits the gap and larger A widens it.
	A int64
	// OmegaYes and OmegaNo are c·n and (c−d)·n: YES instances promise a
	// clique of at least OmegaYes, NO instances promise every clique is
	// at most OmegaNo.
	OmegaYes, OmegaNo int
}

func (p FNParams) validate(n int) error {
	if p.A < 1 {
		return fmt.Errorf("core: need A ≥ 1, got %d", p.A)
	}
	if !(0 < p.OmegaNo && p.OmegaNo < p.OmegaYes && p.OmegaYes <= n) {
		return fmt.Errorf("core: need 0 < OmegaNo < OmegaYes ≤ n, got %d, %d, n=%d", p.OmegaNo, p.OmegaYes, n)
	}
	return nil
}

// FNInstance is the output of the f_N reduction: a QO_N instance plus
// the quantities Theorem 9 reasons about.
type FNInstance struct {
	QON *qon.Instance
	// Params echoes the reduction parameters.
	Params FNParams
	// Alpha = 2^A, T = α^Peak (relation size), W = T/α (edge access cost).
	Alpha, T, W num.Num
	// Peak is (c−d/2)·n = ⌈(OmegaYes+OmegaNo)/2⌉ — the position where
	// the per-join cost profile H_i of a clique-first sequence peaks
	// (Lemma 6).
	Peak int
	// K is K_{c,d}(α,n) = w·α^{Peak(Peak+1)/2 + 1}: Theorem 9's YES
	// upper bound on the optimal cost.
	K num.Num
	// NoLowerBound is K·α^{Peak − OmegaNo − 1} — Lemma 8's lower bound
	// on every join sequence of a NO instance. With the paper's
	// parameters (Peak = (c−d/2)n, OmegaNo = (c−d)n) the exponent is
	// (d/2)n − 1, exactly the paper's K·α^{(d/2)n−1}. The promised gap
	// is strict only when OmegaYes − OmegaNo ≥ 3.
	NoLowerBound num.Num
}

// FN applies the f_N reduction of §4 to a graph g. The query graph is g
// itself; every relation has size t = α^{(c−d/2)n}, every edge has
// selectivity 1/α and access cost w = t/α, and non-edges follow the
// QO_N conventions (selectivity 1, access cost t).
func FN(g *graph.Graph, params FNParams) (*FNInstance, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("core: f_N needs at least two vertices, got %d", n)
	}
	if err := params.validate(n); err != nil {
		return nil, err
	}
	peak := (params.OmegaYes + params.OmegaNo + 1) / 2 // ⌈(ωYes+ωNo)/2⌉
	alpha := num.Pow2(params.A)
	t := num.Pow2(params.A * int64(peak))
	w := num.Pow2(params.A * int64(peak-1))

	inst := &FNInstance{
		QON:    qon.NewUniform(g, t, alpha.Inv(), w),
		Params: params,
		Alpha:  alpha,
		T:      t,
		W:      w,
		Peak:   peak,
	}
	// K = w·α^{peak(peak+1)/2 + 1}.
	inst.K = w.Mul(alpha.Pow(int64(peak)*int64(peak+1)/2 + 1))
	// Lemma 8: every NO sequence has H_peak ≥ w·α^{peak(peak+1)/2 +
	// (peak − ωNo)} = K·α^{peak − ωNo − 1} (Lemma 7 bounds the prefix
	// edge count D_peak through the clique promise).
	inst.NoLowerBound = inst.K.Mul(alpha.Pow(int64(peak - params.OmegaNo - 1)))
	return inst, nil
}

// CliqueFirst builds the Lemma 6 witness sequence: the clique vertices
// first (any order), then the remaining vertices appended so that each
// new vertex is adjacent to the prefix whenever the graph allows it
// (avoiding cartesian products on connected graphs).
func CliqueFirst(g *graph.Graph, clique []int) qon.Sequence {
	n := g.N()
	seq := make(qon.Sequence, 0, n)
	inPrefix := graph.NewBitset(n)
	for _, v := range clique {
		seq = append(seq, v)
		inPrefix.Add(v)
	}
	remaining := graph.NewBitset(n)
	for v := 0; v < n; v++ {
		if !inPrefix.Has(v) {
			remaining.Add(v)
		}
	}
	for !remaining.IsEmpty() {
		// Prefer a remaining vertex adjacent to the prefix.
		pick := -1
		remaining.ForEach(func(v int) {
			if pick < 0 && g.Neighbors(v).IntersectCount(inPrefix) > 0 {
				pick = v
			}
		})
		if pick < 0 {
			pick = remaining.First() // disconnected: cartesian product unavoidable
		}
		seq = append(seq, pick)
		inPrefix.Add(pick)
		remaining.Remove(pick)
	}
	return seq
}

// YesWitnessCost evaluates the clique-first sequence for a YES graph
// whose clique (of size ≥ OmegaYes) is supplied, returning the sequence
// and its cost — the quantity Lemma 6 bounds by K.
func (fi *FNInstance) YesWitnessCost(clique []int) (qon.Sequence, num.Num, error) {
	if len(clique) < fi.Params.OmegaYes {
		return nil, num.Num{}, fmt.Errorf("core: witness clique has %d vertices, promise needs ≥ %d", len(clique), fi.Params.OmegaYes)
	}
	if !fi.QON.Q.IsClique(clique) {
		return nil, num.Num{}, fmt.Errorf("core: witness vertex set is not a clique")
	}
	z := CliqueFirst(fi.QON.Q, clique)
	return z, fi.QON.Cost(z), nil
}

// ProfileH returns the per-join cost profile H_1..H_{n−1} of a sequence
// — the series Lemmas 5 and 6 analyse (geometric rise to position Peak,
// then decay).
func (fi *FNInstance) ProfileH(z qon.Sequence) []num.Num {
	return fi.QON.Evaluate(z).H
}
