package trace

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
)

// Registry is a process-wide metrics sink: named counters, gauges and
// log₂-bucket histograms, created on first use. It is the single
// synchronized aggregation point for the engine's instrumentation — the
// per-run atomic counters of internal/stats are absorbed into it at
// well-defined points (run completion, abandonment) by exactly one
// goroutine, so aggregate reads never race optimizer hot paths.
//
// All methods are safe for concurrent use and safe on a nil receiver
// (instruments obtained from a nil registry are nil and their methods
// are no-ops), matching the stats package's idiom.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named monotone counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, active runs).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value (no-op on nil).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket 0 holds values ≤ 0 and
// bucket i (1 ≤ i ≤ 63) holds values in [2^(i−1), 2^i). The layout is
// fixed so histograms from different runs and processes merge by simple
// bucket-wise addition.
const histBuckets = 64

// Histogram counts observations in fixed log₂-scale buckets and keeps
// exact count, sum, min and max. Observations are lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps a value onto its log₂ bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistBucket is one non-empty bucket of a histogram snapshot: values in
// [Lo, Hi) — Lo = Hi = 0 for the ≤ 0 bucket.
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the log₂ buckets,
// returning the geometric midpoint of the bucket where the cumulative
// count crosses q·Count. Exact min/max are returned at the extremes.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			if b.Lo == 0 {
				return 0
			}
			return math.Sqrt(float64(b.Lo) * float64(b.Hi))
		}
	}
	return float64(s.Max)
}

// Snapshot copies the histogram. Like stats.Snapshot it is safe while
// writers run; the fields are each atomically read, so a snapshot taken
// mid-run is a near-instant cut, not a torn mix of distant states.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		b := HistBucket{Count: c}
		if i > 0 {
			b.Lo = int64(1) << (i - 1)
			b.Hi = int64(1) << i
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// RegistrySnapshot is a JSON-serializable copy of every instrument.
type RegistrySnapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the whole registry (empty snapshot on nil).
func (r *Registry) Snapshot() RegistrySnapshot {
	var s RegistrySnapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteText renders the registry as aligned tables: counters and gauges
// by name, then histograms with count/mean/p50/p90/max columns.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(s.Counters) > 0 {
		fmt.Fprintf(tw, "counter\tvalue\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(tw, "%s\t%d\n", name, s.Counters[name])
		}
		fmt.Fprintln(tw)
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(tw, "gauge\tvalue\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(tw, "%s\t%d\n", name, s.Gauges[name])
		}
		fmt.Fprintln(tw)
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(tw, "histogram\tcount\tmean\tp50\tp90\tmax\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%d\n",
				name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Max)
		}
	}
	return tw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
