package trace

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Do runs f with a pprof label attached to its goroutine (and any it
// spawns), so CPU and heap profiles attribute samples per optimizer:
//
//	trace.Do(ctx, "optimizer", name, func(ctx context.Context) { ... })
//
// The label shows up in `go tool pprof` under the tags view.
func Do(ctx context.Context, key, value string, f func(context.Context)) {
	pprof.Do(ctx, pprof.Labels(key, value), f)
}

// Profiler captures optional CPU and heap profiles around a region —
// typically one engine run. Obtain one with StartProfiles, defer Stop.
// A nil Profiler's Stop is a no-op.
type Profiler struct {
	cpu      *os.File
	heapPath string
}

// StartProfiles begins CPU profiling to cpuPath (when non-empty) and
// arranges for a heap profile at heapPath (when non-empty) to be
// written by Stop. Both empty returns a nil Profiler.
func StartProfiles(cpuPath, heapPath string) (*Profiler, error) {
	if cpuPath == "" && heapPath == "" {
		return nil, nil
	}
	p := &Profiler{heapPath: heapPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("trace: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("trace: cpu profile: %w", err)
		}
		p.cpu = f
	}
	return p, nil
}

// Stop ends CPU profiling and writes the heap profile, if either was
// requested. Safe on nil and idempotent for the CPU side.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			return fmt.Errorf("trace: cpu profile: %w", err)
		}
		p.cpu = nil
	}
	if p.heapPath != "" {
		f, err := os.Create(p.heapPath)
		if err != nil {
			return fmt.Errorf("trace: heap profile: %w", err)
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("trace: heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace: heap profile: %w", err)
		}
		p.heapPath = ""
	}
	return nil
}
