// Package trace is the repository's zero-dependency observability
// layer, threaded through the ensemble engine and the commands:
//
//   - hierarchical spans (engine run → per-optimizer attempt →
//     certify/retry/merge phases) with monotonic timings and recorded
//     heap allocations, exported as Chrome trace_event-compatible JSON
//     that loads directly in chrome://tracing or Perfetto;
//   - a metrics registry — counters, gauges and histograms with fixed
//     log₂-scale buckets — that absorbs the per-run counters of
//     internal/stats into a single synchronized sink (see metrics.go);
//   - runtime/pprof profiling hooks: per-optimizer goroutine labels and
//     optional CPU/heap profile capture around an engine run (see
//     pprof.go).
//
// Everything is race-safe and, like internal/stats, nil-safe: a nil
// *Tracer produces nil *Spans whose methods are no-ops, so
// instrumentation points never branch on whether observability is
// enabled.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans for one process. The epoch is captured at New,
// so span timestamps are monotonic offsets and two spans' timings are
// directly comparable even across goroutines.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu    sync.Mutex
	spans []*Span
}

// New returns an empty Tracer whose epoch is now.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one timed region. Spans form a hierarchy through Child; the
// root spans of a Tracer have parent ID 0. Safe for concurrent use;
// methods are no-ops on a nil receiver.
type Span struct {
	t          *Tracer
	id         uint64
	parent     uint64
	name       string
	track      int
	start      time.Duration // offset from the tracer's epoch
	startAlloc uint64

	mu         sync.Mutex
	fields     map[string]any
	dur        time.Duration
	allocBytes uint64
	ended      bool
}

// heapAllocSample reads the process-wide cumulative heap allocation
// counter (cheaper than runtime.ReadMemStats: no stop-the-world).
// Span allocation deltas are process-global, so under concurrency they
// attribute other goroutines' allocations too — they are a profiling
// hint, not an exact account.
func heapAllocSample() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

func (t *Tracer) newSpan(name string, parent uint64, track int) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		t:          t,
		id:         t.nextID.Add(1),
		parent:     parent,
		name:       name,
		track:      track,
		start:      time.Since(t.epoch),
		startAlloc: heapAllocSample(),
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Start opens a root span on track 0.
func (t *Tracer) Start(name string) *Span { return t.newSpan(name, 0, 0) }

// StartTrack opens a root span on the given track (a "tid" lane in the
// Chrome viewer; the engine gives each optimizer its own track).
func (t *Tracer) StartTrack(name string, track int) *Span { return t.newSpan(name, 0, track) }

// Child opens a sub-span on the same track as s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.id, s.track)
}

// ChildTrack opens a sub-span on an explicit track.
func (s *Span) ChildTrack(name string, track int) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.id, track)
}

// ID returns the span's identifier (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetField attaches a key/value pair, rendered into the trace_event
// "args" object. Last write per key wins.
func (s *Span) SetField(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.fields == nil {
		s.fields = make(map[string]any, 4)
	}
	s.fields[key] = value
	s.mu.Unlock()
}

// End closes the span, recording its duration and allocation delta.
// Ending twice is a no-op; a span never ended (an abandoned optimizer)
// is exported with its duration measured at export time and an
// "unfinished" arg.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Since(s.t.epoch)
	alloc := heapAllocSample()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = now - s.start
		if alloc >= s.startAlloc {
			s.allocBytes = alloc - s.startAlloc
		}
	}
	s.mu.Unlock()
}

// SpanInfo is an immutable snapshot of one span, used by tests and by
// the exporter.
type SpanInfo struct {
	ID         uint64
	Parent     uint64
	Name       string
	Track      int
	StartUS    float64
	DurUS      float64
	AllocBytes uint64
	Fields     map[string]any
	Ended      bool
}

// Snapshot copies every span recorded so far. Unfinished spans report
// the duration accumulated up to the call.
func (t *Tracer) Snapshot() []SpanInfo {
	if t == nil {
		return nil
	}
	now := time.Since(t.epoch)
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanInfo, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		info := SpanInfo{
			ID:         s.id,
			Parent:     s.parent,
			Name:       s.name,
			Track:      s.track,
			StartUS:    float64(s.start.Microseconds()),
			AllocBytes: s.allocBytes,
			Ended:      s.ended,
		}
		if s.ended {
			info.DurUS = float64(s.dur.Microseconds())
		} else {
			info.DurUS = float64((now - s.start).Microseconds())
		}
		if len(s.fields) > 0 {
			info.Fields = make(map[string]any, len(s.fields))
			for k, v := range s.fields {
				info.Fields[k] = v
			}
		}
		s.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// traceEvent is one entry of the Chrome trace_event JSON array
// (complete events, "ph":"X"; timestamps in microseconds).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// Export writes every span as Chrome trace_event JSON — the format
// chrome://tracing and Perfetto load directly. Unfinished spans are
// exported with their duration so far and args.unfinished = true, so an
// abandoned optimizer's stalled attempt is visible in the timeline.
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		return nil
	}
	infos := t.Snapshot()
	doc := traceDoc{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, len(infos))}
	for _, s := range infos {
		args := make(map[string]any, len(s.Fields)+3)
		for k, v := range s.Fields {
			args[k] = v
		}
		args["span_id"] = s.ID
		if s.Parent != 0 {
			args["parent_id"] = s.Parent
		}
		if s.AllocBytes > 0 {
			args["alloc_bytes"] = s.AllocBytes
		}
		if !s.Ended {
			args["unfinished"] = true
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: s.Name, Cat: "approxqo", Ph: "X", PID: 1, TID: s.Track,
			TS: s.StartUS, Dur: s.DurUS, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteFile exports the trace to path (see Export).
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
