package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.runs").Add(3)
	r.Counter("engine.runs").Inc()
	if got := r.Counter("engine.runs").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	r.Gauge("engine.pending").Set(7)
	r.Gauge("engine.pending").Add(-2)
	if got := r.Gauge("engine.pending").Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}

	h := r.Histogram("latency")
	for _, v := range []int64{1, 2, 3, 100, 1000, 0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1106 || s.Min != 0 || s.Max != 1000 {
		t.Errorf("snapshot = %+v", s)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 41}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	h := newHistogram()
	// 90 fast observations around 8..15, 10 slow around 1024..2047.
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 8 || p50 > 16 {
		t.Errorf("p50 = %v, want within [8,16]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 1024 || p99 > 2048 {
		t.Errorf("p99 = %v, want within [1024,2048]", p99)
	}
	if s.Quantile(0) != float64(s.Min) || s.Quantile(1) != float64(s.Max) {
		t.Errorf("extreme quantiles should be exact min/max")
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile should be 0")
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("certify.pass").Add(12)
	r.Gauge("pending").Set(2)
	r.Histogram("wall_us").Observe(128)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"certify.pass", "12", "pending", "wall_us", "p50", "p90"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
