package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSpanHierarchyAndExport(t *testing.T) {
	tr := New()
	root := tr.Start("engine.run")
	root.SetField("model", "qon")
	opt := root.ChildTrack("optimizer:greedy", 1)
	attempt := opt.Child("attempt")
	attempt.SetField("attempt", 1)
	certify := attempt.Child("certify")
	time.Sleep(time.Millisecond)
	certify.End()
	attempt.End()
	opt.End()
	stalled := root.ChildTrack("optimizer:annealing", 2) // never ended
	_ = stalled
	root.End()

	infos := tr.Snapshot()
	if len(infos) != 5 {
		t.Fatalf("got %d spans, want 5", len(infos))
	}
	byName := map[string]SpanInfo{}
	for _, s := range infos {
		byName[s.Name] = s
	}
	if byName["attempt"].Parent != byName["optimizer:greedy"].ID {
		t.Errorf("attempt parent = %d, want %d", byName["attempt"].Parent, byName["optimizer:greedy"].ID)
	}
	if byName["certify"].Parent != byName["attempt"].ID {
		t.Errorf("certify parent wrong")
	}
	if byName["optimizer:greedy"].Track != 1 || byName["optimizer:annealing"].Track != 2 {
		t.Errorf("tracks not assigned: %+v", byName)
	}
	if byName["optimizer:annealing"].Ended {
		t.Errorf("stalled span should be unfinished")
	}
	if byName["certify"].DurUS <= 0 {
		t.Errorf("certify duration = %v, want > 0", byName["certify"].DurUS)
	}

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("exported %d events, want 5", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "optimizer:annealing" {
			if unfinished, _ := ev.Args["unfinished"].(bool); !unfinished {
				t.Errorf("stalled span not marked unfinished: %v", ev.Args)
			}
		}
		if ev.Name == "engine.run" {
			if model, _ := ev.Args["model"].(string); model != "qon" {
				t.Errorf("root span lost its field: %v", ev.Args)
			}
		}
	}
}

func TestWriteFile(t *testing.T) {
	tr := New()
	tr.Start("solo").End()
	path := filepath.Join(t.TempDir(), "out.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("trace file is not valid JSON:\n%s", data)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("nothing")
	s.SetField("k", "v")
	c := s.Child("child")
	c.End()
	s.End()
	if s.ID() != 0 || c.ID() != 0 {
		t.Errorf("nil spans should have ID 0")
	}
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil tracer snapshot = %v", got)
	}
	if err := tr.Export(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer export: %v", err)
	}

	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(5)
	if r.Counter("c").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Errorf("nil registry instruments should be inert")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Histograms != nil {
		t.Errorf("nil registry snapshot = %+v", snap)
	}

	Do(context.Background(), "optimizer", "x", func(ctx context.Context) {})
	var p *Profiler
	if err := p.Stop(); err != nil {
		t.Errorf("nil profiler stop: %v", err)
	}
}

func TestProfilerCapture(t *testing.T) {
	dir := t.TempDir()
	cpu, heap := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "heap.pprof")
	p, err := StartProfiles(cpu, heap)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU under a label so the profile is non-trivial.
	Do(context.Background(), "optimizer", "spin", func(ctx context.Context) {
		x := 0
		for i := 0; i < 1e6; i++ {
			x += i
		}
		_ = x
	})
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, heap} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("profile %s: %v", path, err)
		}
		if len(data) == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	if none, err := StartProfiles("", ""); err != nil || none != nil {
		t.Errorf("StartProfiles(\"\",\"\") = %v, %v; want nil, nil", none, err)
	}
}
