package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestSoakSharedTracerAndRegistry hammers one Tracer and one Registry
// from many goroutines — the shape of concurrent engine runs sharing a
// single observability sink — and then checks the two structural
// invariants the engine relies on: no span ever loses its parent (every
// recorded parent ID resolves to a recorded span), and histogram
// observation totals equal the counters incremented alongside them.
// Run under -race this is the trace layer's soak test (see ROADMAP
// extended verify).
func TestSoakSharedTracerAndRegistry(t *testing.T) {
	const (
		workers        = 16
		runsPerWorker  = 25
		spansPerRun    = 4 // root + optimizer + attempt + certify
		obsPerObserver = runsPerWorker
	)
	tr := New()
	reg := NewRegistry()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runsPerWorker; i++ {
				root := tr.Start(fmt.Sprintf("run.%d", w))
				optSpan := root.ChildTrack("optimizer", w+1)
				attempt := optSpan.Child("attempt")
				attempt.SetField("attempt", i)
				certify := attempt.Child("certify")
				certify.End()
				attempt.End()
				// Half the runs leave the optimizer span unfinished, like
				// an abandoned stall.
				if i%2 == 0 {
					optSpan.End()
				}
				root.End()

				reg.Counter("runs").Inc()
				reg.Histogram("wall_us").Observe(int64(i + 1))
				reg.Gauge("pending").Add(1)
				reg.Gauge("pending").Add(-1)
			}
		}()
	}
	// Concurrent readers: snapshot the registry and tracer while the
	// writers run, as the engine report and a metrics poller would.
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < obsPerObserver; i++ {
				_ = reg.Snapshot()
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	readers.Wait()

	infos := tr.Snapshot()
	wantSpans := workers * runsPerWorker * spansPerRun
	if len(infos) != wantSpans {
		t.Fatalf("recorded %d spans, want %d", len(infos), wantSpans)
	}
	ids := make(map[uint64]bool, len(infos))
	for _, s := range infos {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
	for _, s := range infos {
		if s.Parent != 0 && !ids[s.Parent] {
			t.Errorf("span %d (%s) lost its parent %d", s.ID, s.Name, s.Parent)
		}
	}

	snap := reg.Snapshot()
	wantRuns := int64(workers * runsPerWorker)
	if got := snap.Counters["runs"]; got != wantRuns {
		t.Errorf("runs counter = %d, want %d", got, wantRuns)
	}
	h := snap.Histograms["wall_us"]
	if h.Count != wantRuns {
		t.Errorf("histogram count %d != counter total %d", h.Count, wantRuns)
	}
	var bucketTotal int64
	for _, b := range h.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != h.Count {
		t.Errorf("bucket total %d != histogram count %d", bucketTotal, h.Count)
	}
	if got := snap.Gauges["pending"]; got != 0 {
		t.Errorf("pending gauge = %d after all runs drained, want 0", got)
	}

	// The export must stay valid JSON even with unfinished spans.
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("soak export is not valid JSON")
	}
}
