// Replication chaos soak: the replicated certified-result cache under
// attack. Phase one fills the fleet's caches through the coordinator
// while a chaos transport drops and resets the replication path (and
// only it — /optimize stays clean, proving serving never blocks on
// replication); anti-entropy repairs the divergence the partition
// created, paying for every transfer out of the global retry budget.
// Then one worker is killed and replaced — hinted handoff streams the
// moved keyspace from the surviving replicas to the newcomer — and
// relabeled duplicates of every pre-kill request must come back as
// canonical cache hits, certified, with zero uncertified 200s.
// Race-clean (go test -race).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/cluster/replica"
	"approxqo/internal/engine"
	"approxqo/internal/num"
	"approxqo/internal/qon"
	"approxqo/internal/server"
	"approxqo/internal/server/loadgen"
	"approxqo/internal/trace"
	"approxqo/internal/workload"
)

// rsoakSecret authenticates the soak fleet's replication traffic.
const rsoakSecret = "rsoak-secret"

// rsoakWorker builds one qod worker whose replication client rides the
// given (possibly chaotic) transport.
func rsoakWorker(t *testing.T, seed int64, rt http.RoundTripper) (*trace.Registry, *httptest.Server) {
	t.Helper()
	reg := trace.NewRegistry()
	s, err := server.New(server.Config{
		MaxConcurrent:    4,
		QueueDepth:       64,
		DegradeAt:        64,
		DefaultTimeout:   10 * time.Second,
		Seed:             seed,
		Metrics:          reg,
		ReplicaTransport: rt,
		ClusterSecret:    rsoakSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return reg, ts
}

// rsoakEntry builds a distinct valid certified entry for direct
// injection (i varies the key and cost).
func rsoakEntry(i int) *replica.Entry {
	n := 3
	seq := make([]int, n)
	for k := range seq {
		seq[k] = (k + 1) % n
	}
	return &replica.Entry{
		Key:    fmt.Sprintf("qon:3:inject-%04x", i),
		RawKey: fmt.Sprintf("raw-%d", i),
		Report: &engine.Report{
			Model: "qon",
			N:     n,
			Best: &engine.BestRecord{
				Winner:    "dp",
				Sequence:  seq,
				Cost:      num.FromInt64(int64(500 + i)),
				Certified: true,
			},
		},
	}
}

// rsoakPost POSTs one JSON body to url and decodes a 200 into out.
func rsoakPost(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(replica.AuthHeader, rsoakSecret)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s response %s: %v", url, data, err)
		}
	}
}

// rsoakKeys lists every cache key a worker holds.
func rsoakKeys(t *testing.T, worker string) []string {
	t.Helper()
	var out replica.KeysResponse
	rsoakPost(t, worker+"/cache/keys",
		&replica.KeysRequest{Ranges: []replica.Range{{Lo: 0, Hi: 0}}, Limit: replica.DefaultMaxOfferEntries}, &out)
	return out.Keys
}

// One anti-entropy pass heals injected divergence — and a dry retry
// budget stops it instead of letting repair starve serving.
func TestRepairOnceHealsInjectedDivergence(t *testing.T) {
	const workers = 3
	urls := make([]string, workers)
	for i := 0; i < workers; i++ {
		_, ts := rsoakWorker(t, int64(400+i), nil)
		defer ts.Close()
		urls[i] = ts.URL
	}
	reg := trace.NewRegistry()
	co, err := New(Config{
		Workers:        urls,
		ProbeInterval:  -1,
		RepairInterval: -1,
		HedgeAfter:     -1,
		ClusterSecret:  rsoakSecret,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Divergence: one worker holds an entry its replica set lacks.
	lone := rsoakEntry(1)
	var or replica.OfferResponse
	rsoakPost(t, urls[0]+"/cache/offer", &replica.OfferRequest{Entries: []*replica.Entry{lone}}, &or)
	if or.Accepted != 1 {
		t.Fatalf("injection offer accepted %d, want 1", or.Accepted)
	}

	diverged, repaired := co.RepairOnce(ctx)
	if diverged < 1 || repaired < 1 {
		t.Fatalf("RepairOnce found %d divergent arcs and repaired %d entries, want ≥1 each", diverged, repaired)
	}
	if v := reg.Counter(MetricRepairXfers).Value(); v < 1 {
		t.Fatalf("repair.xfers = %d, want ≥1 (each transfer withdraws a budget token)", v)
	}
	for i, w := range urls {
		found := false
		for _, k := range rsoakKeys(t, w) {
			if k == lone.Key {
				found = true
			}
		}
		if !found {
			t.Fatalf("worker %d lacks %q after repair", i, lone.Key)
		}
	}
	if d, r := co.RepairOnce(ctx); d != 0 || r != 0 {
		t.Fatalf("second pass found %d/%d, want converged 0/0", d, r)
	}

	// Dry budget: repair must stop, not borrow from serving.
	for co.budget.withdraw() {
	}
	rsoakPost(t, urls[0]+"/cache/offer", &replica.OfferRequest{Entries: []*replica.Entry{rsoakEntry(2)}}, nil)
	co.RepairOnce(ctx)
	if v := reg.Counter(MetricRepairDenied).Value(); v < 1 {
		t.Fatalf("repair.denied = %d after draining the budget, want ≥1", v)
	}
}

// Membership changes are serialized against each other and against the
// repair loop: concurrent join/retire churn with anti-entropy hammering
// in the background must leave a consistent ring (race-clean under
// go test -race), and a repair pass that overlapped a membership change
// must not have flipped the warm gauge for a ring it never saw.
func TestMembershipChangesSerializedAgainstRepair(t *testing.T) {
	const workers = 3
	urls := make([]string, workers)
	for i := 0; i < workers; i++ {
		_, ts := rsoakWorker(t, int64(700+i), nil)
		defer ts.Close()
		urls[i] = ts.URL
	}
	_, extra := rsoakWorker(t, 777, nil)
	defer extra.Close()

	co, err := New(Config{
		Workers:        urls,
		ProbeInterval:  -1,
		RepairInterval: -1,
		HedgeAfter:     -1,
		ClusterSecret:  rsoakSecret,
		Metrics:        trace.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Seed one entry so repair has keyspace to digest.
	rsoakPost(t, urls[0]+"/cache/offer", &replica.OfferRequest{Entries: []*replica.Entry{rsoakEntry(9)}}, nil)

	stop := make(chan struct{})
	var repairWG sync.WaitGroup
	repairWG.Add(1)
	go func() {
		defer repairWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				co.RepairOnce(ctx)
			}
		}
	}()
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); co.JoinWorker(ctx, extra.URL) }()
		go func() { defer wg.Done(); co.RetireWorker(ctx, urls[2]) }()
		wg.Wait()
		// Undo, concurrently again, so every round churns both directions.
		wg.Add(2)
		go func() { defer wg.Done(); co.RetireWorker(ctx, extra.URL) }()
		go func() { defer wg.Done(); co.JoinWorker(ctx, urls[2]) }()
		wg.Wait()
	}
	close(stop)
	repairWG.Wait()

	got := co.Workers()
	sort.Strings(got)
	want := append([]string(nil), urls...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("ring holds %d workers after churn, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring membership after churn = %v, want %v", got, want)
		}
	}
	if gen := co.warmGen.Load(); gen < 16 {
		t.Fatalf("warm generation %d after 16 membership changes, want ≥16", gen)
	}
	// With churn over, a converged pass may restore warmth.
	deadline := time.Now().Add(10 * time.Second)
	for co.cfg.Metrics.Gauge(MetricReplicaWarm).Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("warm gauge never restored after churn ended")
		}
		co.RepairOnce(ctx)
	}
}

func TestSoakReplicaPartitionRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		workers = 3
		bases   = 16
	)

	// The partition: the replication path (and only it — the "/cache/"
	// target leaves /optimize untouched) drops the first five matching
	// requests outright, then resets the next five after delivery, then
	// heals. Serving must ride through untouched; anti-entropy must
	// close whatever gaps the outage left.
	transport := chaos.NewTransport(nil, []chaos.NetRule{
		{Fault: chaos.NetDrop, Target: "/cache/"},
		{Fault: chaos.NetReset, Target: "/cache/"},
	}, chaos.WithNetSeed(17), chaos.WithNetFailures(5))

	regs := make([]*trace.Registry, workers)
	listeners := make([]*httptest.Server, workers)
	urls := make([]string, workers)
	for i := 0; i < workers; i++ {
		regs[i], listeners[i] = rsoakWorker(t, int64(600+i), transport)
		defer listeners[i].Close()
		urls[i] = listeners[i].URL
	}

	reg := trace.NewRegistry()
	co, err := New(Config{
		Workers:        urls,
		Transport:      transport,
		ProbeInterval:  -1,
		RepairInterval: -1,
		HedgeAfter:     -1,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     8 * time.Millisecond,
		RetryBurst:     128, // repair transfers draw real tokens; deposits alone (0.2/req) would stall convergence
		ClusterSecret:  rsoakSecret,
		Seed:           21,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	// Phase 1: fill the fleet through the front door while the
	// replication path misbehaves.
	c := loadgen.New(cts.URL, 31)
	c.Retries = 4
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 10 * time.Millisecond
	instances := make([]*qon.Instance, bases)
	keys := make(map[string]bool, bases)
	for i := 0; i < bases; i++ {
		in, err := workload.Generate(workload.Params{
			N: 5 + i%3, Shape: workload.Chain, Seed: int64(800 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		instances[i] = in
		out, err := c.Optimize(ctx, &server.Request{Instance: in, TimeoutMS: 20_000})
		if err != nil {
			t.Fatalf("base %d transport: %v", i, err)
		}
		if !out.OK() {
			t.Fatalf("base %d: status %d (%+v)", i, out.Status, out.ErrDoc)
		}
		if err := csoakCheck200(out.Result); err != nil {
			t.Fatalf("base %d: %v", i, err)
		}
		keys["qon:"+out.Result.Fingerprint] = true
	}
	want := len(keys) // distinct canonical keys (seeds make collisions unexpected)
	if want < bases-1 {
		t.Fatalf("only %d distinct fingerprints across %d bases", want, bases)
	}

	// Anti-entropy until convergence: two consecutive clean passes.
	// Early rounds lose traffic to the partition; the fault budget is
	// finite, so the loop must converge once it heals.
	repairUntilClean := func(phase string) {
		t.Helper()
		clean := 0
		for round := 0; round < 25 && clean < 2; round++ {
			if d, _ := co.RepairOnce(ctx); d == 0 {
				clean++
			} else {
				clean = 0
			}
		}
		if clean < 2 {
			t.Fatalf("%s: anti-entropy never converged", phase)
		}
	}
	time.Sleep(50 * time.Millisecond) // let async fan-out land (or fault) first
	repairUntilClean("phase 1")

	// R=2 on a 3-worker ring puts every certified result everywhere.
	for i, w := range urls {
		if got := len(rsoakKeys(t, w)); got != want {
			t.Errorf("worker %d holds %d keys after repair, want %d", i, got, want)
		}
	}

	// Kill worker 0 and replace it: retire streams its arcs' entries
	// between the survivors, join hands the newcomer its keyspace before
	// the ring flips traffic. Both degrade gracefully — an error means
	// cold, never refused.
	listeners[0].Close()
	if _, err := co.RetireWorker(ctx, urls[0]); err != nil {
		t.Logf("retire degraded (expected with a dead peer): %v", err)
	}
	replReg, replTS := rsoakWorker(t, 999, transport)
	defer replTS.Close()
	if _, err := co.JoinWorker(ctx, replTS.URL); err != nil {
		t.Logf("join degraded: %v", err)
	}
	repairUntilClean("post-rejoin")
	if v := reg.Counter(MetricHandoff).Value(); v < 1 {
		t.Errorf("replica.handoff = %d, want ≥1 (membership changes must stream moved keys)", v)
	}
	if got := len(rsoakKeys(t, replTS.URL)); got != want {
		t.Errorf("replacement holds %d keys after handoff+repair, want %d", got, want)
	}

	// Phase 2: a relabeled duplicate of every pre-kill request. Each
	// must be a certified 200 served from a cache — the canonical-space
	// copy survived the kill on the surviving replicas and reached the
	// replacement — with zero engine re-runs visible as cache misses.
	rng := rand.New(rand.NewSource(51))
	for i, base := range instances {
		dup := qon.Relabel(base, rng.Perm(base.N()))
		out, err := c.Optimize(ctx, &server.Request{Instance: dup, TimeoutMS: 20_000})
		if err != nil {
			t.Fatalf("duplicate %d transport: %v", i, err)
		}
		if !out.OK() {
			t.Fatalf("duplicate %d: status %d (%+v)", i, out.Status, out.ErrDoc)
		}
		if err := csoakCheck200(out.Result); err != nil {
			t.Fatalf("duplicate %d: %v", i, err)
		}
		if !out.Result.Cached {
			t.Errorf("duplicate %d missed every cache: the replicated copy did not survive the kill", i)
		}
	}
	var canonicalHits int64
	for _, r := range append(regs[1:], replReg) {
		canonicalHits += r.Counter(server.MetricCanonicalHits).Value()
	}
	if canonicalHits == 0 {
		t.Error("no canonical cache hits fleet-wide after the kill: recovery did not restore the hit path")
	}

	// The ring is warm and ready again.
	rd, err := c.Readyz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Status != http.StatusOK || !rd.Ready || !rd.ReplicaWarm {
		t.Errorf("/readyz = %d %+v, want 200 ready+warm", rd.Status, rd)
	}
	if v := reg.Gauge(MetricReplicaWarm).Value(); v != 1 {
		t.Errorf("replica.warm gauge = %d, want 1", v)
	}

	// Repair traffic is priced like retries: attempts beyond the
	// per-request primaries plus repair transfers all fit inside the
	// token bucket (deposits + burst + refunded hedge losers).
	requests := reg.Counter(MetricRequests).Value()
	groups := reg.Counter(MetricBatchShapes).Value()
	attempts := reg.Counter(MetricAttempts).Value()
	xfers := reg.Counter(MetricRepairXfers).Value()
	refunded := reg.Counter(MetricRetryRefunded).Value()
	bound := float64(requests+groups)*(1+DefaultRetryRatio) + 128 + float64(refunded)
	if float64(attempts+xfers) > bound+1 {
		t.Errorf("attempts=%d + repair xfers=%d exceed the budget bound %.0f (requests=%d groups=%d)",
			attempts, xfers, bound, requests, groups)
	}
	if v := reg.Gauge(MetricInFlight).Value(); v != 0 {
		t.Errorf("inflight gauge %d after the soak drained, want 0", v)
	}
	t.Logf("replica soak: %d keys replicated, handoff=%d xfers=%d repaired=%d denied=%d attempts=%d of bound %.0f",
		want, reg.Counter(MetricHandoff).Value(), xfers,
		reg.Counter(MetricRepairEntries).Value(), reg.Counter(MetricRepairDenied).Value(),
		attempts, bound)
}
