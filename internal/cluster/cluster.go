// Package cluster is the fault-tolerant coordinator that fronts a pool
// of qod workers: it routes /optimize and /optimize/batch jobs to
// worker shards by canonical instance fingerprint over a
// consistent-hash ring, so relabeled duplicates keep landing on the
// same worker and dedup fleet-wide through that worker's canonical
// cache and singleflight.
//
// Robustness is the point — a worker can die mid-request and the fleet
// keeps its promises:
//
//   - a per-worker health state machine (healthy → suspect → down with
//     half-open probing) driven by background /readyz probes plus
//     in-band failures, the serving layer's Breaker pattern lifted to
//     whole workers;
//   - bounded failover: retries go to the next ring replica with
//     exponential backoff + jitter, gated by a global token-bucket
//     retry budget, so a down shard costs a bounded premium instead of
//     a retry storm;
//   - tail-latency hedging: when a request outlives the adaptive p95 of
//     recent upstream latencies, a duplicate is issued to the next
//     replica and the first certified answer wins, the loser cancelled
//     — safe exactly because results are certified and canonically
//     keyed;
//   - deadline propagation: the client's timeout_ms is decremented
//     across the hop, so a worker never burns budget its caller has
//     already written off.
//
// Every 200 the coordinator relays was decoded and re-validated
// (certified winner, permutation-valid sequence); undecodable or
// truncated worker responses count as upstream failures and are
// retried within budget. The chaos transport (internal/chaos.Transport)
// injects drop/delay/5xx/reset/truncate faults below the coordinator
// to prove all of this under attack.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"approxqo/internal/cluster/replica"
	"approxqo/internal/server"
	"approxqo/internal/trace"
)

// Metric names published into the configured registry. The soak tests
// assert the retry-amplification invariant: MetricAttempts ≤
// MetricRequests + MetricBatchShapes + retry-budget burst +
// ratio·requests — every upstream POST is accounted, including hedges.
const (
	MetricRequests       = "cluster.requests"         // counter: client /optimize hits
	MetricBatchRequests  = "cluster.batch.requests"   // counter: client /optimize/batch hits
	MetricBatchJobs      = "cluster.batch.jobs"       // counter: jobs across decoded batches
	MetricBatchShapes    = "cluster.batch.shapes"     // counter: distinct fingerprints routed
	MetricAttempts       = "cluster.attempts"         // counter: upstream POSTs, retries and hedges included
	MetricRetries        = "cluster.retries"          // counter: failover retries issued (⊆ attempts)
	MetricRetryDenied    = "cluster.retry.denied"     // counter: retries/hedges refused by the budget
	MetricHedgeIssued    = "cluster.hedge.issued"     // counter: hedged duplicates launched (⊆ attempts)
	MetricHedgeWins      = "cluster.hedge.wins"       // counter: hedges that answered first
	MetricUpstreamErrors = "cluster.upstream.errors"  // counter: attempts that failed retryably
	MetricWorkerDown     = "cluster.worker.down"      // counter: healthy/suspect → down transitions
	MetricProbes         = "cluster.probes"           // counter: /readyz probes issued
	MetricInFlight       = "cluster.inflight"         // gauge: client requests being routed
	MetricUpstreamWallUS = "cluster.upstream.wall_us" // histogram: successful upstream attempt wall time (µs)
	MetricRetryRefunded  = "cluster.retry.refunded"   // counter: hedge-loser tokens returned to the budget
)

// Replication metric names. The chaos soak asserts MetricHandoff > 0
// after a kill-and-replace (the moved keyspace was streamed, not
// cold-started) and that repair transfers stay within the retry
// budget's bound (MetricRepairXfers withdraws ⊆ the budget invariant).
const (
	MetricReplicaWarm   = "cluster.replica.warm"           // gauge: 1 when the moved keyspace is fully streamed
	MetricHandoff       = "cluster.replica.handoff"        // counter: entries streamed by hinted handoff
	MetricHandoffDenied = "cluster.replica.handoff.denied" // counter: entries past the transfer budget, left to repair
	MetricRepairRounds  = "cluster.replica.repair.rounds"  // counter: anti-entropy passes started
	MetricRepairRanges  = "cluster.replica.repair.ranges"  // counter: divergent replica ranges found
	MetricRepairXfers   = "cluster.replica.repair.xfers"   // counter: repair transfers issued (each withdrew a budget token)
	MetricRepairEntries = "cluster.replica.repair.entries" // counter: entries read-repaired onto a replica
	MetricRepairDenied  = "cluster.replica.repair.denied"  // counter: transfers refused by the retry budget
)

// SpanRequest and SpanBatch name the coordinator's per-request spans
// (fields: request_id, key, worker, status, kind, attempts).
const (
	SpanRequest = "cluster.request"
	SpanBatch   = "cluster.batch"
)

// Config configures a Coordinator. The zero value plus a Workers list
// is usable: every other field has a production-shaped default.
type Config struct {
	// Workers are the qod worker base URLs (http://host:port) forming
	// the initial ring membership. At least one is required.
	Workers []string
	// VirtualNodes per worker on the ring (default DefaultVirtualNodes).
	VirtualNodes int

	// Transport issues upstream requests (default http.DefaultTransport);
	// the chaos tests wrap it with a fault-injecting chaos.Transport.
	Transport http.RoundTripper

	// ProbeInterval is the background /readyz probe cadence (default
	// 500ms; negative disables probing — in-band outcomes still drive
	// the state machine). ProbeTimeout bounds one probe (default 250ms).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// DownAfter consecutive failures (in-band or probe) mark a worker
	// down; DownCooldown is how long it stays down before half-opening
	// (defaults DefaultDownAfter / DefaultDownCooldown).
	DownAfter    int
	DownCooldown time.Duration

	// MaxRetries caps failover retries per client request (default 2).
	// Every retry also needs a token from the global retry budget:
	// RetryRatio tokens accrue per client request up to RetryBurst
	// (defaults DefaultRetryRatio / DefaultRetryBurst).
	MaxRetries int
	RetryRatio float64
	RetryBurst int
	// BaseBackoff and MaxBackoff shape the between-retry sleep (defaults
	// 5ms / 100ms), jittered to [d/2, d).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// HedgeAfter sets the hedging trigger: 0 (default) hedges after the
	// adaptive p95 of recent upstream latencies, clamped to
	// [HedgeFloor, HedgeCeil] (defaults 1ms / 2s; the floor doubles as
	// the fallback before enough samples accrue); a positive value is a
	// fixed delay; negative disables hedging entirely. Hedges draw from
	// the same retry budget as retries.
	HedgeAfter time.Duration
	HedgeFloor time.Duration
	HedgeCeil  time.Duration

	// DefaultTimeout and MaxTimeout mirror the worker's budget policy
	// (defaults 2s / 30s): the coordinator resolves the client's budget
	// once, then forwards the remaining slice (minus HopMargin, default
	// 5ms) as the worker's timeout_ms on every attempt.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	HopMargin      time.Duration

	// Replicas is the number of ring successors each worker's certified
	// cache entries are replicated to: the coordinator names them in the
	// X-Replicate-To header of every forwarded job, and handoff and
	// anti-entropy maintain that copy count across membership changes
	// and partitions. Zero means replica.DefaultReplicas; negative
	// disables replication, handoff and repair entirely. Replication
	// also requires ClusterSecret: without one, workers keep their
	// /cache/* surfaces closed, so withDefaults forces Replicas
	// negative rather than fanning out requests every worker refuses.
	Replicas int
	// ClusterSecret is the shared secret proving cluster membership on
	// every replication exchange (replica.AuthHeader): offers, digests,
	// key/export pulls, and the X-Replicate-To hint on forwarded jobs.
	// Every fleet member must be started with the same value (qod
	// -cluster-secret). Empty disables replication.
	ClusterSecret string
	// RepairInterval is the anti-entropy cadence (default 5s; negative
	// disables the background loop — RepairOnce still works).
	RepairInterval time.Duration
	// HandoffEntries bounds the entries one membership change may
	// stream (default 512). Past it, handoff degrades gracefully: the
	// ring still flips, the warm gauge stays 0, and anti-entropy
	// finishes the job under the retry budget's pacing.
	HandoffEntries int
	// HandoffTimeout bounds one hinted-handoff pass (default 5s);
	// serving never waits on it.
	HandoffTimeout time.Duration

	// MaxBodyBytes bounds client request bodies (default
	// server.DefaultMaxBodyBytes). MaxBatchJobs caps batch jobs (default
	// server.DefaultMaxBatchJobs). RetryAfter is the hint attached to
	// coordinator-origin 502/503 documents (default 250ms).
	MaxBodyBytes int64
	MaxBatchJobs int
	RetryAfter   time.Duration

	// Seed seeds backoff jitter and generated request IDs.
	Seed int64

	// Tracer / Metrics wire the coordinator into the observability
	// layer; nil disables either.
	Tracer  *trace.Tracer
	Metrics *trace.Registry
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = DefaultDownAfter
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = DefaultDownCooldown
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 5 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 100 * time.Millisecond
	}
	if c.HedgeFloor <= 0 {
		c.HedgeFloor = time.Millisecond
	}
	if c.HedgeCeil <= 0 {
		c.HedgeCeil = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.HopMargin <= 0 {
		c.HopMargin = 5 * time.Millisecond
	}
	if c.Replicas == 0 {
		c.Replicas = replica.DefaultReplicas
	}
	if c.ClusterSecret == "" {
		// Workers refuse unauthenticated replication traffic, so a
		// secretless fleet runs with replication off instead of fanning
		// out exchanges every peer rejects.
		c.Replicas = -1
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 5 * time.Second
	}
	if c.HandoffEntries <= 0 {
		c.HandoffEntries = 512
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = server.DefaultMaxBodyBytes
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = server.DefaultMaxBatchJobs
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	return c
}

// Coordinator routes optimization requests across the worker ring.
// Build with New; serve via Handler (tests) or ListenAndServe (qod
// coordinator mode, which also starts the prober).
type Coordinator struct {
	cfg    Config
	ring   *Ring
	health *healthBoard
	budget *retryBudget
	lat    *latencyTracker
	client *http.Client

	ridSeq atomic.Int64
	ridTag string

	jmu sync.Mutex
	rng *rand.Rand

	inflight atomic.Int64
	draining atomic.Bool
	warm     atomic.Bool
	started  time.Time

	// mmu serializes membership changes (JoinWorker/RetireWorker/
	// AddWorker/RemoveWorker): each computes its ownership delta from a
	// ring snapshot, and two interleaved changes would hand keyspace off
	// against stale snapshots. warmGen counts membership generations and
	// handoffs counts handoff passes in flight, so a concurrent
	// RepairOnce that converged against the old ring cannot flip the
	// warm gauge mid-change (see RepairOnce).
	mmu      sync.Mutex
	warmGen  atomic.Int64
	handoffs atomic.Int32
}

// New builds a Coordinator over the configured worker pool.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: Config.Workers must name at least one worker")
	}
	c := &Coordinator{
		cfg:     cfg,
		ring:    NewRing(cfg.VirtualNodes),
		budget:  newRetryBudget(cfg.RetryRatio, cfg.RetryBurst),
		lat:     newLatencyTracker(),
		client:  &http.Client{Transport: cfg.Transport},
		ridTag:  fmt.Sprintf("%08x", ringHash(strconv.FormatInt(cfg.Seed, 10))&0xffffffff),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		started: time.Now(),
	}
	c.health = newHealthBoard(cfg.DownAfter, cfg.DownCooldown, func(string) {
		cfg.Metrics.Counter(MetricWorkerDown).Inc()
	})
	for _, w := range cfg.Workers {
		c.ring.Add(w)
	}
	c.setWarm(true) // no membership change has moved any keyspace yet
	return c, nil
}

// setWarm records replica warmth: whether every keyspace arc moved by
// membership changes has been fully streamed to its new owner. Serving
// never gates on it — cold arcs just miss their caches until handoff
// or anti-entropy catches up.
func (c *Coordinator) setWarm(warm bool) {
	c.warm.Store(warm)
	v := int64(0)
	if warm {
		v = 1
	}
	c.cfg.Metrics.Gauge(MetricReplicaWarm).Set(v)
}

// BeginDrain marks the coordinator as draining: /readyz reports
// draining:true (and stays 200 while requests are in flight, so a
// load balancer sees a deliberate drain rather than a flapping
// failure) and stops claiming readiness once the last request ends.
func (c *Coordinator) BeginDrain() { c.draining.Store(true) }

// AddWorker joins a worker to the ring immediately, without hinted
// handoff: keys rebalance at once and the moved arcs cold-start (or
// wait for anti-entropy). JoinWorker is the warm path.
func (c *Coordinator) AddWorker(worker string) {
	c.mmu.Lock()
	defer c.mmu.Unlock()
	c.warmGen.Add(1)
	c.ring.Add(worker)
}

// RemoveWorker leaves a worker from the ring and forgets its health,
// without streaming its keyspace first. RetireWorker is the warm path.
func (c *Coordinator) RemoveWorker(worker string) {
	c.mmu.Lock()
	defer c.mmu.Unlock()
	c.warmGen.Add(1)
	c.ring.Remove(worker)
	c.health.forget(worker)
}

// Workers lists the current ring membership.
func (c *Coordinator) Workers() []string { return c.ring.Workers() }

// Handler returns the coordinator's panic-isolated HTTP handler:
// /optimize and /optimize/batch route to workers; /healthz and /readyz
// report the coordinator's own liveness and the fleet's health.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", c.handleOptimize)
	mux.HandleFunc("/optimize/batch", c.handleBatch)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/readyz", c.handleReadyz)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				writeErrorDoc(w, r.Header.Get(server.RequestIDHeader), http.StatusInternalServerError,
					"panic", fmt.Sprintf("internal error: %v", p), 0)
			}
		}()
		mux.ServeHTTP(w, r)
	})
}

// StartProbes launches the background /readyz prober; it stops when
// ctx is cancelled. A non-positive ProbeInterval makes this a no-op.
func (c *Coordinator) StartProbes(ctx context.Context) {
	if c.cfg.ProbeInterval <= 0 {
		return
	}
	go c.probeLoop(ctx)
}

// ListenAndServe serves on addr with probing and anti-entropy repair
// active until ctx is cancelled, then drains: /readyz flips to
// draining:true first (staying 200 while requests finish), and the
// listener shuts down within a short drain window.
func (c *Coordinator) ListenAndServe(ctx context.Context, addr string) error {
	c.StartProbes(ctx)
	c.StartRepair(ctx)
	hs := &http.Server{Addr: addr, Handler: c.Handler()}
	errC := make(chan error, 1)
	go func() { errC <- hs.ListenAndServe() }()
	select {
	case err := <-errC:
		return err
	case <-ctx.Done():
	}
	c.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func (c *Coordinator) probeLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.probeAll(ctx)
		}
	}
}

// probeAll probes every ring member's /readyz in parallel, feeding
// outcomes into the health board. Down workers are probed only once
// their cooldown has lapsed, so the probe is the half-open trial.
func (c *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range c.ring.Workers() {
		if !c.health.routable(w) {
			continue // down and cooling: leave the circuit closed
		}
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			c.cfg.Metrics.Counter(MetricProbes).Inc()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+"/readyz", nil)
			if err != nil {
				c.health.observe(worker, false)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				c.health.observe(worker, false)
				return
			}
			resp.Body.Close()
			c.health.observe(worker, resp.StatusCode == http.StatusOK)
		}(w)
	}
	wg.Wait()
}

// backoff computes the jittered sleep before retry attempt (0-based).
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.jmu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d/2) + 1))
	c.jmu.Unlock()
	return d/2 + j
}

// nextRequestID generates a coordinator-origin request ID for clients
// that sent none.
func (c *Coordinator) nextRequestID() string {
	return "co-" + c.ridTag + "-" + strconv.FormatInt(c.ridSeq.Add(1), 16)
}

// hedgeDelay resolves the hedging trigger for one request: negative
// means disabled, a fixed HedgeAfter is used as-is, otherwise the
// adaptive p95.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter < 0 {
		return -1
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	return c.lat.p95(c.cfg.HedgeFloor, c.cfg.HedgeFloor, c.cfg.HedgeCeil)
}

// HealthDoc is the coordinator's /healthz payload.
type HealthDoc struct {
	Status   string  `json:"status"`
	UptimeMS float64 `json:"uptime_ms"`
	InFlight int     `json:"inflight"`
	Workers  int     `json:"workers"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &HealthDoc{
		Status:   "ok",
		UptimeMS: float64(time.Since(c.started).Microseconds()) / 1000,
		InFlight: int(c.inflight.Load()),
		Workers:  c.ring.Size(),
	})
}

// ReadyDoc is the coordinator's /readyz payload: ready while at least
// one worker is routable and the coordinator is not draining.
// ReplicaWarm reports whether every membership-moved keyspace arc has
// been streamed to its new owner — informational, never gating: a cold
// fleet serves correctly, just with more cache misses.
type ReadyDoc struct {
	Ready       bool           `json:"ready"`
	Draining    bool           `json:"draining"`
	ReplicaWarm bool           `json:"replica_warm"`
	InFlight    int            `json:"inflight"`
	Workers     []WorkerStatus `json:"workers"`
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	workers := c.ring.Workers()
	doc := &ReadyDoc{
		Draining:    c.draining.Load(),
		ReplicaWarm: c.warm.Load(),
		InFlight:    int(c.inflight.Load()),
		Workers:     c.health.snapshot(workers),
	}
	fleetUp := false
	for _, ws := range workers {
		if c.health.stateOf(ws) != StateDown {
			fleetUp = true
			break
		}
	}
	doc.Ready = fleetUp && !doc.Draining
	status := http.StatusOK
	if !doc.Ready {
		status = http.StatusServiceUnavailable
	}
	if doc.Draining && doc.InFlight > 0 && fleetUp {
		// Mid-drain with work still in flight: report 200 with
		// draining:true and the per-worker states instead of flapping to
		// 503 while the remaining requests are being answered.
		status = http.StatusOK
	}
	writeJSON(w, status, doc)
}
