package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is how many points each worker contributes to the
// ring. 64 keeps the keyspace split within a few percent of even for
// small fleets while membership changes stay cheap (a rebuild is
// O(workers · vnodes · log)).
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over worker names (base URLs). Keys —
// canonical instance fingerprints — map to an ordered preference list
// of distinct workers: the primary shard first, then the failover
// replicas in ring order. Because the hash ignores everything but the
// key and the membership, the same fingerprint routes to the same
// worker from every coordinator, which is what lets each worker's
// canonical cache and singleflight dedup relabeled duplicates
// fleet-wide.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	names  map[string]bool
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing builds an empty ring; vnodes ≤ 0 means DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, names: make(map[string]bool)}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// fnv-1a of near-identical strings (vnode suffixes differ by one
	// digit) clusters on the ring; a splitmix64 finalizer scatters it.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a worker; adding an existing worker is a no-op.
func (r *Ring) Add(worker string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[worker] {
		return
	}
	r.names[worker] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(worker + "#" + strconv.Itoa(i)), worker})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].owner < r.points[b].owner // deterministic on (vanishingly rare) collisions
	})
}

// Remove deletes a worker; removing an unknown worker is a no-op.
func (r *Ring) Remove(worker string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.names[worker] {
		return
	}
	delete(r.names, worker)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.owner != worker {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Workers lists the current members, sorted.
func (r *Ring) Workers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.names))
	for w := range r.names {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Size reports the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Lookup returns up to n distinct workers for key, primary first, then
// successive replicas walking the ring clockwise. n ≤ 0 or n > members
// returns every member. An empty ring returns nil.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.names) {
		n = len(r.names)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, p.owner)
		}
	}
	return out
}
