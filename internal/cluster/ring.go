package cluster

import (
	"sort"
	"strconv"
	"sync"

	"approxqo/internal/cluster/replica"
)

// DefaultVirtualNodes is how many points each worker contributes to the
// ring. 64 keeps the keyspace split within a few percent of even for
// small fleets while membership changes stay cheap (a rebuild is
// O(workers · vnodes · log)).
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over worker names (base URLs). Keys —
// canonical instance fingerprints — map to an ordered preference list
// of distinct workers: the primary shard first, then the failover
// replicas in ring order. Because the hash ignores everything but the
// key and the membership, the same fingerprint routes to the same
// worker from every coordinator, which is what lets each worker's
// canonical cache and singleflight dedup relabeled duplicates
// fleet-wide.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	names  map[string]bool
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing builds an empty ring; vnodes ≤ 0 means DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, names: make(map[string]bool)}
}

// ringHash is replica.KeyHash: the single keyspace definition shared
// with the workers' digest arithmetic, so the ownership ranges the
// coordinator hands a worker to digest select exactly the keys the
// ring would route there.
func ringHash(s string) uint64 { return replica.KeyHash(s) }

// Add inserts a worker; adding an existing worker is a no-op.
func (r *Ring) Add(worker string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[worker] {
		return
	}
	r.names[worker] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(worker + "#" + strconv.Itoa(i)), worker})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].owner < r.points[b].owner // deterministic on (vanishingly rare) collisions
	})
}

// Remove deletes a worker; removing an unknown worker is a no-op.
func (r *Ring) Remove(worker string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.names[worker] {
		return
	}
	delete(r.names, worker)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.owner != worker {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Workers lists the current members, sorted.
func (r *Ring) Workers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.names))
	for w := range r.names {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Size reports the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Clone returns an independent copy of the ring — the shadow membership
// the coordinator mutates to compute ownership deltas before flipping
// live traffic. The points slice is deep-copied because Remove
// truncates its backing array in place.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cp := &Ring{vnodes: r.vnodes, names: make(map[string]bool, len(r.names))}
	cp.points = append([]ringPoint(nil), r.points...)
	for w := range r.names {
		cp.names[w] = true
	}
	return cp
}

// ownerAt returns the worker owning ring position h (the owner of the
// first point clockwise from h), or "" on an empty ring. Callers hold
// at least a read lock.
func (r *Ring) ownerAt(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.points[i%len(r.points)].owner
}

// OwnersAt returns up to n distinct workers responsible for ring
// position h, primary first — Lookup with the hash already in hand
// (handoff works range by range, not key by key).
func (r *Ring) OwnersAt(h uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.names) {
		n = len(r.names)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, p.owner)
		}
	}
	return out
}

// OwnedRange is one vnode arc of the ring with its owner and the
// distinct successor workers holding the arc's replicas.
type OwnedRange struct {
	Range      replica.Range
	Owner      string
	Successors []string
}

// OwnedRanges enumerates the ring's vnode arcs: for each point, the arc
// (previous point, point] it owns, plus up to `successors` distinct
// follow-on workers — the replica set anti-entropy compares digests
// across. A single point (impossible in practice: every worker carries
// vnodes points) would own the full circle via the Lo==Hi convention.
func (r *Ring) OwnedRanges(successors int) []OwnedRange {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.points)
	if n == 0 {
		return nil
	}
	out := make([]OwnedRange, 0, n)
	for i := 0; i < n; i++ {
		lo := r.points[(i-1+n)%n].hash
		p := r.points[i]
		if lo == p.hash && n > 1 {
			continue // zero-length arc from a (vanishingly rare) hash collision
		}
		or := OwnedRange{Range: replica.Range{Lo: lo, Hi: p.hash}, Owner: p.owner}
		if successors > 0 {
			seen := map[string]bool{p.owner: true}
			for j := 1; j < n && len(or.Successors) < successors; j++ {
				q := r.points[(i+j)%n]
				if !seen[q.owner] {
					seen[q.owner] = true
					or.Successors = append(or.Successors, q.owner)
				}
			}
		}
		out = append(out, or)
	}
	return out
}

// MovedRange is one arc of the keyspace whose primary owner differs
// between two ring memberships.
type MovedRange struct {
	Range    replica.Range
	From, To string
}

// OwnershipDelta computes exactly the keyspace whose primary ownership
// changes between two memberships — the arcs hinted handoff must
// stream, and nothing else (the property test pins both directions).
// The boundaries are the union of both rings' points: within each
// consecutive arc both rings' ownership is constant, so comparing the
// owners at the arc's top classifies every key in it at once. Either
// ring empty means no delta to stream.
func OwnershipDelta(oldRing, newRing *Ring) []MovedRange {
	if oldRing == nil || newRing == nil {
		return nil
	}
	oldRing.mu.RLock()
	newRing.mu.RLock()
	defer oldRing.mu.RUnlock()
	defer newRing.mu.RUnlock()
	if len(oldRing.points) == 0 || len(newRing.points) == 0 {
		return nil
	}
	bounds := make([]uint64, 0, len(oldRing.points)+len(newRing.points))
	for _, p := range oldRing.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range newRing.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	dedup := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	bounds = dedup
	var out []MovedRange
	for i, hi := range bounds {
		lo := bounds[(i-1+len(bounds))%len(bounds)]
		from, to := oldRing.ownerAt(hi), newRing.ownerAt(hi)
		if from != to {
			out = append(out, MovedRange{Range: replica.Range{Lo: lo, Hi: hi}, From: from, To: to})
		}
	}
	return out
}

// Lookup returns up to n distinct workers for key, primary first, then
// successive replicas walking the ring clockwise. n ≤ 0 or n > members
// returns every member. An empty ring returns nil.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.names) {
		n = len(r.names)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, p.owner)
		}
	}
	return out
}
