package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"approxqo/internal/cluster/replica"
)

func ringWorkers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return out
}

func TestRingLookupIsDeterministicAndDistinct(t *testing.T) {
	r := NewRing(0)
	for _, w := range ringWorkers(8) {
		r.Add(w)
	}
	for _, key := range []string{"qon:fp-a", "qon:fp-b", "qoh:fp-c", ""} {
		first := r.Lookup(key, 0)
		if len(first) != 8 {
			t.Fatalf("Lookup(%q, 0) returned %d workers, want all 8", key, len(first))
		}
		seen := map[string]bool{}
		for _, w := range first {
			if seen[w] {
				t.Fatalf("Lookup(%q) repeated worker %s", key, w)
			}
			seen[w] = true
		}
		for trial := 0; trial < 3; trial++ {
			again := r.Lookup(key, 0)
			for i := range first {
				if again[i] != first[i] {
					t.Fatalf("Lookup(%q) not deterministic at position %d: %s vs %s", key, i, first[i], again[i])
				}
			}
		}
	}
	if got := r.Lookup("qon:fp-a", 3); len(got) != 3 {
		t.Errorf("Lookup(_, 3) returned %d workers, want 3", len(got))
	}
}

func TestRingMembershipChangeMovesOnlyAffectedKeys(t *testing.T) {
	r := NewRing(0)
	workers := ringWorkers(8)
	for _, w := range workers {
		r.Add(w)
	}
	keys := make([]string, 500)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("qon:fp-%d", i)
		before[i] = r.Lookup(keys[i], 1)[0]
	}
	removed := workers[3]
	r.Remove(removed)
	moved := 0
	for i, key := range keys {
		now := r.Lookup(key, 1)[0]
		if now == removed {
			t.Fatalf("key %q still routes to the removed worker", key)
		}
		if before[i] == removed {
			continue // had to move
		}
		if now != before[i] {
			moved++
		}
	}
	// Consistent hashing's whole point: keys not owned by the removed
	// worker stay put.
	if moved != 0 {
		t.Errorf("%d key(s) whose owner survived were reassigned anyway", moved)
	}
	// And re-adding restores the original assignment exactly.
	r.Add(removed)
	for i, key := range keys {
		if now := r.Lookup(key, 1)[0]; now != before[i] {
			t.Errorf("key %q routes to %s after re-add, originally %s", key, now, before[i])
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	for _, w := range ringWorkers(8) {
		r.Add(w)
	}
	counts := map[string]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("qon:fp-%d", i), 1)[0]]++
	}
	for w, n := range counts {
		// 64 vnodes keeps shards within a loose 2x band of the mean.
		if n < keys/8/2 || n > keys/8*2 {
			t.Errorf("worker %s owns %d of %d keys (mean %d): ring is unbalanced", w, n, keys, keys/8)
		}
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(4)
	if got := r.Lookup("k", 1); got != nil {
		t.Errorf("empty ring Lookup = %v, want nil", got)
	}
	r.Add("http://w:1")
	r.Add("http://w:1")
	if r.Size() != 1 {
		t.Errorf("double Add yields size %d, want 1", r.Size())
	}
	r.Remove("http://unknown:2")
	r.Remove("http://w:1")
	r.Remove("http://w:1")
	if r.Size() != 0 || r.Lookup("k", 1) != nil {
		t.Errorf("ring not empty after removals: size %d", r.Size())
	}
}

// Property test of the handoff planner: OwnershipDelta(old, new)
// returns exactly the moved keyspace — every key whose owner changed
// falls in exactly one returned arc, labelled with its old and new
// owner, and no key whose owner is unchanged falls in any arc.
func TestOwnershipDeltaIsExactlyTheMovedKeyspace(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		old := NewRing(0)
		members := 3 + rng.Intn(6)
		for _, w := range ringWorkers(members) {
			old.Add(w)
		}
		next := old.Clone()
		// Random membership churn: 1-2 joins and/or up to one removal.
		for j := 0; j <= rng.Intn(2); j++ {
			next.Add(fmt.Sprintf("http://joiner-%d-%d:9", trial, j))
		}
		if rng.Intn(2) == 0 {
			next.Remove(ringWorkers(members)[rng.Intn(members)])
		}

		delta := OwnershipDelta(old, next)
		for k := 0; k < 2000; k++ {
			key := fmt.Sprintf("qon:key-%d-%d", trial, k)
			h := replica.KeyHash(key)
			var matches []MovedRange
			for _, mr := range delta {
				if mr.Range.Contains(h) {
					matches = append(matches, mr)
				}
			}
			oldOwner := old.Lookup(key, 1)[0]
			newOwner := next.Lookup(key, 1)[0]
			if oldOwner == newOwner {
				if len(matches) != 0 {
					t.Fatalf("trial %d: unmoved key %q (owner %s) matched %d delta arcs: %+v",
						trial, key, oldOwner, len(matches), matches)
				}
				continue
			}
			if len(matches) != 1 {
				t.Fatalf("trial %d: moved key %q (%s → %s) matched %d delta arcs, want exactly 1",
					trial, key, oldOwner, newOwner, len(matches))
			}
			if matches[0].From != oldOwner || matches[0].To != newOwner {
				t.Fatalf("trial %d: key %q arc labelled %s → %s, ring says %s → %s",
					trial, key, matches[0].From, matches[0].To, oldOwner, newOwner)
			}
		}
	}
}

// Identical rings and empty rings produce no delta.
func TestOwnershipDeltaDegenerateCases(t *testing.T) {
	r := NewRing(0)
	for _, w := range ringWorkers(4) {
		r.Add(w)
	}
	if d := OwnershipDelta(r, r.Clone()); len(d) != 0 {
		t.Fatalf("identical rings produced a %d-arc delta: %+v", len(d), d)
	}
	if d := OwnershipDelta(NewRing(0), r); d != nil {
		t.Fatalf("empty old ring produced a delta: %+v", d)
	}
	if d := OwnershipDelta(r, NewRing(0)); d != nil {
		t.Fatalf("empty new ring produced a delta: %+v", d)
	}
}
