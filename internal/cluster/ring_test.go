package cluster

import (
	"fmt"
	"testing"
)

func ringWorkers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return out
}

func TestRingLookupIsDeterministicAndDistinct(t *testing.T) {
	r := NewRing(0)
	for _, w := range ringWorkers(8) {
		r.Add(w)
	}
	for _, key := range []string{"qon:fp-a", "qon:fp-b", "qoh:fp-c", ""} {
		first := r.Lookup(key, 0)
		if len(first) != 8 {
			t.Fatalf("Lookup(%q, 0) returned %d workers, want all 8", key, len(first))
		}
		seen := map[string]bool{}
		for _, w := range first {
			if seen[w] {
				t.Fatalf("Lookup(%q) repeated worker %s", key, w)
			}
			seen[w] = true
		}
		for trial := 0; trial < 3; trial++ {
			again := r.Lookup(key, 0)
			for i := range first {
				if again[i] != first[i] {
					t.Fatalf("Lookup(%q) not deterministic at position %d: %s vs %s", key, i, first[i], again[i])
				}
			}
		}
	}
	if got := r.Lookup("qon:fp-a", 3); len(got) != 3 {
		t.Errorf("Lookup(_, 3) returned %d workers, want 3", len(got))
	}
}

func TestRingMembershipChangeMovesOnlyAffectedKeys(t *testing.T) {
	r := NewRing(0)
	workers := ringWorkers(8)
	for _, w := range workers {
		r.Add(w)
	}
	keys := make([]string, 500)
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("qon:fp-%d", i)
		before[i] = r.Lookup(keys[i], 1)[0]
	}
	removed := workers[3]
	r.Remove(removed)
	moved := 0
	for i, key := range keys {
		now := r.Lookup(key, 1)[0]
		if now == removed {
			t.Fatalf("key %q still routes to the removed worker", key)
		}
		if before[i] == removed {
			continue // had to move
		}
		if now != before[i] {
			moved++
		}
	}
	// Consistent hashing's whole point: keys not owned by the removed
	// worker stay put.
	if moved != 0 {
		t.Errorf("%d key(s) whose owner survived were reassigned anyway", moved)
	}
	// And re-adding restores the original assignment exactly.
	r.Add(removed)
	for i, key := range keys {
		if now := r.Lookup(key, 1)[0]; now != before[i] {
			t.Errorf("key %q routes to %s after re-add, originally %s", key, now, before[i])
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	for _, w := range ringWorkers(8) {
		r.Add(w)
	}
	counts := map[string]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("qon:fp-%d", i), 1)[0]]++
	}
	for w, n := range counts {
		// 64 vnodes keeps shards within a loose 2x band of the mean.
		if n < keys/8/2 || n > keys/8*2 {
			t.Errorf("worker %s owns %d of %d keys (mean %d): ring is unbalanced", w, n, keys, keys/8)
		}
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(4)
	if got := r.Lookup("k", 1); got != nil {
		t.Errorf("empty ring Lookup = %v, want nil", got)
	}
	r.Add("http://w:1")
	r.Add("http://w:1")
	if r.Size() != 1 {
		t.Errorf("double Add yields size %d, want 1", r.Size())
	}
	r.Remove("http://unknown:2")
	r.Remove("http://w:1")
	r.Remove("http://w:1")
	if r.Size() != 0 || r.Lookup("k", 1) != nil {
		t.Errorf("ring not empty after removals: size %d", r.Size())
	}
}
