// Coordinator chaos soak: a fleet of loadgen clients hammers a
// coordinator over three real qod workers while the network path
// injects drop/5xx/reset/truncate/delay faults at a low rate AND one
// worker is killed and replaced mid-load (a live ring-membership
// change). The contract under test is the cluster's core promise:
// every 200 relayed to a client is a certified, permutation-valid
// plan; every failure is a structured document; upstream attempts stay
// inside the retry budget's amplification bound; relabeled duplicates
// keep routing to one shard. Race-clean (go test -race).
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/qon"
	"approxqo/internal/server"
	"approxqo/internal/server/loadgen"
	"approxqo/internal/trace"
	"approxqo/internal/workload"
)

const (
	csoakClients  = 24
	csoakReqsPerC = 6
	csoakWorkers  = 3
	csoakKillAt   = (csoakClients * csoakReqsPerC) / 2 // responses before the worker kill
)

func csoakWorker(t *testing.T, seed int64) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Config{
		MaxConcurrent:  4,
		QueueDepth:     csoakClients * 2,
		DegradeAt:      csoakClients,
		DefaultTimeout: 10 * time.Second,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

// csoakCheck200 asserts the certified-permutation contract on one
// relayed 200 — the soak's "zero uncertified 200s" clause.
func csoakCheck200(res *server.Result) error {
	if res == nil || res.Report == nil || res.Report.Best == nil {
		return fmt.Errorf("200 without a winning plan")
	}
	best := res.Report.Best
	if !best.Certified {
		return fmt.Errorf("uncertified winner %q relayed as 200", best.Winner)
	}
	if got := len(best.Sequence); got != res.N {
		return fmt.Errorf("winning sequence has %d relations, instance has %d", got, res.N)
	}
	seen := make([]bool, res.N)
	for _, r := range best.Sequence {
		if r < 0 || r >= res.N || seen[r] {
			return fmt.Errorf("winning sequence %v is not a permutation", best.Sequence)
		}
		seen[r] = true
	}
	return nil
}

// csoakCheckFailure asserts every non-200 the coordinator hands a
// client is a structured document with a sane status.
func csoakCheckFailure(status int, doc *server.ErrorDoc) error {
	if doc == nil || doc.Error.Kind == "" {
		return fmt.Errorf("status %d without a structured error document", status)
	}
	switch status {
	case http.StatusBadRequest, http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return nil
	}
	return fmt.Errorf("unexpected status %d (kind %q: %s)", status, doc.Error.Kind, doc.Error.Message)
}

func TestSoakCoordinatorChaosWithWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	workers := make([]*server.Server, csoakWorkers)
	listeners := make([]*httptest.Server, csoakWorkers)
	urls := make([]string, csoakWorkers)
	for i := range workers {
		workers[i], listeners[i] = csoakWorker(t, int64(300+i))
		urls[i] = listeners[i].URL
		defer listeners[i].Close()
	}

	// Low-rate faults across the whole fleet: the first matching firing
	// rule wins, so each request draws one fault kind at most. Delay is
	// short — tail latency for the hedger, not an outage.
	transport := chaos.NewTransport(nil, []chaos.NetRule{
		{Fault: chaos.NetDrop},
		{Fault: chaos.Net5xx},
		{Fault: chaos.NetReset},
		{Fault: chaos.NetTruncate},
		{Fault: chaos.NetDelay},
	}, chaos.WithNetSeed(9), chaos.WithNetRate(0.02), chaos.WithNetDelay(10*time.Millisecond))

	reg := trace.NewRegistry()
	co, err := New(Config{
		Workers:       urls,
		Transport:     transport,
		ProbeInterval: 20 * time.Millisecond,
		DownCooldown:  100 * time.Millisecond,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    8 * time.Millisecond,
		HedgeAfter:    0, // adaptive p95
		Seed:          13,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	co.StartProbes(ctx)
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	var (
		answered    atomic.Int64
		oks         atomic.Int64
		rejected    atomic.Int64
		cacheHits   atomic.Int64
		postKillOKs atomic.Int64
		killed      atomic.Bool
		killGate    = make(chan struct{})
		gateOnce    sync.Once
		wg          sync.WaitGroup
	)
	errC := make(chan error, csoakClients*csoakReqsPerC)
	record := func(i, j int, ok bool, err error) {
		if answered.Add(1) == csoakKillAt {
			gateOnce.Do(func() { close(killGate) })
		}
		if ok {
			oks.Add(1)
			if killed.Load() {
				postKillOKs.Add(1)
			}
		} else {
			rejected.Add(1)
		}
		if err != nil {
			errC <- fmt.Errorf("client %d request %d: %v", i, j, err)
		}
	}

	for i := 0; i < csoakClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := loadgen.New(cts.URL, int64(4000+i))
			c.Retries = 4
			c.BaseBackoff = time.Millisecond
			c.MaxBackoff = 10 * time.Millisecond
			rng := rand.New(rand.NewSource(int64(7000 + i)))
			base, err := workload.Generate(workload.Params{
				N: 5 + i%3, Shape: workload.Chain, Seed: int64(100 + i),
			})
			if err != nil {
				errC <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			for j := 0; j < csoakReqsPerC; j++ {
				switch {
				case j%3 == 2: // batch with planted duplicates
					jobs, _, err := loadgen.PlantedBatch(int64(9000+i*10+j), 6)
					if err != nil {
						record(i, j, false, err)
						continue
					}
					out, err := c.OptimizeBatch(ctx, &server.BatchRequest{Jobs: jobs})
					if err != nil {
						record(i, j, false, fmt.Errorf("batch transport: %v", err))
						continue
					}
					if !out.OK() {
						record(i, j, false, csoakCheckFailure(out.Status, out.ErrDoc))
						continue
					}
					var jobErr error
					for k, item := range out.Response.Results {
						if item.Error != nil {
							if item.Error.Kind == "" {
								jobErr = fmt.Errorf("job %d: error document without a kind", k)
							}
							continue
						}
						if err := csoakCheck200(item.Result); err != nil {
							jobErr = fmt.Errorf("job %d: %v", k, err)
						}
					}
					record(i, j, true, jobErr)
				default: // single requests: the base instance, then relabelings
					in := base
					if j > 0 {
						in = qon.Relabel(base, rng.Perm(base.N()))
					}
					out, err := c.Optimize(ctx, &server.Request{Instance: in, TimeoutMS: 20_000})
					if err != nil {
						record(i, j, false, fmt.Errorf("transport: %v", err))
						continue
					}
					if !out.OK() {
						record(i, j, false, csoakCheckFailure(out.Status, out.ErrDoc))
						continue
					}
					if out.Result.Cached {
						cacheHits.Add(1)
					}
					record(i, j, true, csoakCheck200(out.Result))
				}
			}
		}(i)
	}

	// Kill worker 0 mid-load and replace it: a live membership change
	// under fire. Add the replacement before removing the casualty so
	// the ring never empties a shard's replica chain.
	select {
	case <-killGate:
	case <-ctx.Done():
		t.Fatal("soak stalled before the kill point")
	}
	replacement, replacementTS := csoakWorker(t, 999)
	defer replacementTS.Close()
	_ = replacement
	co.AddWorker(replacementTS.URL)
	co.RemoveWorker(urls[0])
	killed.Store(true)
	listeners[0].Close()

	wg.Wait()
	close(errC)
	failures := 0
	for err := range errC {
		failures++
		if failures <= 20 {
			t.Error(err)
		}
	}
	if failures > 20 {
		t.Errorf("... and %d more failures", failures-20)
	}

	total := answered.Load()
	if total != csoakClients*csoakReqsPerC {
		t.Fatalf("fleet sent %d requests but observed %d responses", csoakClients*csoakReqsPerC, total)
	}
	if oks.Load() == 0 {
		t.Fatal("soak produced zero successful responses")
	}
	if postKillOKs.Load() == 0 {
		t.Error("no successes after the worker kill: the fleet did not absorb the membership change")
	}
	if got := co.Workers(); len(got) != csoakWorkers {
		t.Errorf("ring has %d workers after the swap, want %d", len(got), csoakWorkers)
	}
	for _, w := range co.Workers() {
		if w == urls[0] {
			t.Error("killed worker still in the ring")
		}
	}

	// Relabeled duplicates route to one shard: the ring key is a pure
	// function of the canonical fingerprint, which relabeling preserves.
	base, err := workload.Generate(workload.Params{N: 6, Shape: workload.Chain, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	keyOf := func(in *qon.Instance) string {
		req := &server.Request{Instance: in}
		return routeKey(req, nil)
	}
	want := keyOf(base)
	for k := 0; k < 4; k++ {
		if got := keyOf(qon.Relabel(base, rng.Perm(6))); got != want {
			t.Fatalf("relabeling %d ring key %q != base %q: duplicates would scatter", k, got, want)
		}
	}
	if cacheHits.Load() == 0 {
		t.Error("no cache hits fleet-wide: duplicate routing never reached a warm shard")
	}

	// Retry amplification stays inside the token-bucket bound: every
	// upstream POST beyond the per-request/per-group primary was paid
	// for by the budget.
	requests := reg.Counter(MetricRequests).Value()
	groups := reg.Counter(MetricBatchShapes).Value()
	attempts := reg.Counter(MetricAttempts).Value()
	bound := float64(requests+groups)*(1+DefaultRetryRatio) + DefaultRetryBurst
	if float64(attempts) > bound+1 {
		t.Errorf("attempts=%d exceeds the budget bound %.0f (requests=%d groups=%d)",
			attempts, bound, requests, groups)
	}
	issued := reg.Counter(MetricHedgeIssued).Value()
	wins := reg.Counter(MetricHedgeWins).Value()
	if wins > issued {
		t.Errorf("hedge.wins=%d > hedge.issued=%d", wins, issued)
	}
	if issued > attempts {
		t.Errorf("hedge.issued=%d > attempts=%d", issued, attempts)
	}
	if v := reg.Gauge(MetricInFlight).Value(); v != 0 {
		t.Errorf("inflight gauge %d after the fleet drained, want 0", v)
	}
	t.Logf("soak: %d responses (%d ok, %d rejected, %d cached, %d post-kill ok); attempts=%d of bound %.0f; hedges %d issued / %d won; retries=%d denied=%d",
		total, oks.Load(), rejected.Load(), cacheHits.Load(), postKillOKs.Load(),
		attempts, bound, issued, wins,
		reg.Counter(MetricRetries).Value(), reg.Counter(MetricRetryDenied).Value())
}
