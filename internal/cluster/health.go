package cluster

import (
	"sort"
	"sync"
	"time"
)

// WorkerState is one worker's position in the health state machine:
//
//	healthy --failure--> suspect --DownAfter consecutive--> down
//	suspect --success--> healthy
//	down --DownCooldown lapses--> half-open: the next probe or routed
//	     request is the trial; success closes the circuit (healthy),
//	     failure re-opens it for another cooldown.
//
// Failures are fed from two sources with equal weight: in-band routing
// outcomes (transport errors, 5xx, undecodable responses) and the
// background /readyz prober — the same consecutive-failure + cooldown +
// half-open shape as the serving layer's per-optimizer Breaker, lifted
// to whole workers.
type WorkerState int

const (
	StateHealthy WorkerState = iota
	StateSuspect
	StateDown
)

func (s WorkerState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// DefaultDownAfter and DefaultDownCooldown configure the state machine:
// three consecutive failures mark a worker down, and a down worker is
// retried (half-open) after two seconds.
const (
	DefaultDownAfter    = 3
	DefaultDownCooldown = 2 * time.Second
)

// healthBoard tracks every worker's state. All methods are safe for
// concurrent use.
type healthBoard struct {
	downAfter int
	cooldown  time.Duration
	now       func() time.Time

	mu    sync.Mutex
	state map[string]*workerHealth

	onDown func(worker string) // down-transition hook; runs under mu, must not call back in
}

type workerHealth struct {
	state       WorkerState
	consecutive int
	retryAt     time.Time // down only: when the circuit half-opens
}

func newHealthBoard(downAfter int, cooldown time.Duration, onDown func(string)) *healthBoard {
	if downAfter <= 0 {
		downAfter = DefaultDownAfter
	}
	if cooldown <= 0 {
		cooldown = DefaultDownCooldown
	}
	return &healthBoard{
		downAfter: downAfter,
		cooldown:  cooldown,
		now:       time.Now,
		state:     make(map[string]*workerHealth),
		onDown:    onDown,
	}
}

// observe folds one outcome — an in-band routing result or a probe —
// into the worker's state.
func (h *healthBoard) observe(worker string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state[worker]
	if st == nil {
		st = &workerHealth{}
		h.state[worker] = st
	}
	if ok {
		st.state = StateHealthy
		st.consecutive = 0
		st.retryAt = time.Time{}
		return
	}
	st.consecutive++
	switch {
	case st.consecutive >= h.downAfter:
		if st.state != StateDown && h.onDown != nil {
			h.onDown(worker)
		}
		st.state = StateDown
		st.retryAt = h.now().Add(h.cooldown)
	default:
		st.state = StateSuspect
	}
}

// routable reports whether the worker should receive traffic right
// now: healthy and suspect workers always, down workers only once
// their cooldown has lapsed (the half-open trial — live traffic and
// probes share it, and the next observe decides the circuit).
func (h *healthBoard) routable(worker string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state[worker]
	if st == nil || st.state != StateDown {
		return true
	}
	return !st.retryAt.After(h.now())
}

// stateOf reports the worker's current state (healthy when never seen).
func (h *healthBoard) stateOf(worker string) WorkerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st := h.state[worker]; st != nil {
		return st.state
	}
	return StateHealthy
}

// forget drops a worker's state (ring membership removal).
func (h *healthBoard) forget(worker string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.state, worker)
}

// snapshot lists worker states for the readiness document, sorted by
// worker name for stable output.
func (h *healthBoard) snapshot(workers []string) []WorkerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]WorkerStatus, 0, len(workers))
	for _, w := range workers {
		ws := WorkerStatus{Worker: w, State: StateHealthy.String()}
		if st := h.state[w]; st != nil {
			ws.State = st.state.String()
			ws.ConsecutiveFails = st.consecutive
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// WorkerStatus is one worker's health as reported by the coordinator's
// /readyz.
type WorkerStatus struct {
	Worker           string `json:"worker"`
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
}
