package cluster

import (
	"encoding/json"
	"testing"
)

// FuzzWorkerResponseJSON fuzzes the coordinator's response decoders —
// the trust boundary between the coordinator and its workers. A chaos
// fault (truncate) or a buggy worker can hand the coordinator any byte
// soup; the decoders must never panic, never accept an uncertified or
// non-permutation plan, and must accept only documents that survive a
// re-encode round trip (a decoded doc the coordinator would relay must
// still be a valid doc).
func FuzzWorkerResponseJSON(f *testing.F) {
	// A certified single result, the shape tryWorker relays.
	f.Add(`{"model":"qon","n":3,"rung":"full","fingerprint":"deadbeef",` +
		`"report":{"model":"qon","n":3,"best":{"winner":"dp","sequence":[2,0,1],` +
		`"cost":"42","cost_log2":5.39,"exact":true,"certified":true},"runs":[],"wall_ms":1.5}}`)
	// Cached variant.
	f.Add(`{"model":"qon","n":2,"rung":"full","cached":true,"fingerprint":"ff",` +
		`"report":{"model":"qon","n":2,"best":{"winner":"greedy","sequence":[0,1],` +
		`"cost":"7","certified":true},"runs":[]}}`)
	// Rejectable results: uncertified winner, truncated permutation,
	// out-of-range relation, no winning plan, implausible n.
	f.Add(`{"n":2,"report":{"best":{"winner":"dp","sequence":[0,1],"certified":false}}}`)
	f.Add(`{"n":3,"report":{"best":{"winner":"dp","sequence":[0,1],"certified":true}}}`)
	f.Add(`{"n":2,"report":{"best":{"winner":"dp","sequence":[0,2],"certified":true}}}`)
	f.Add(`{"n":2,"report":{"runs":[]}}`)
	f.Add(`{"n":1048577,"report":{"best":{"winner":"dp","certified":true}}}`)
	// Error documents, well-formed and kindless.
	f.Add(`{"error":{"kind":"overloaded","message":"q full","retry_after_ms":250,"request_id":"co-1"}}`)
	f.Add(`{"error":{"message":"no kind"}}`)
	// Batch documents.
	f.Add(`{"jobs":2,"shapes":1,"results":[` +
		`{"index":0,"result":{"n":2,"report":{"best":{"winner":"dp","sequence":[1,0],"cost":"9","certified":true}}}},` +
		`{"index":1,"error":{"kind":"bad_request","message":"nope"}}]}`)
	// Cost-less winner: decodes but must fail validation.
	f.Add(`{"n":2,"report":{"best":{"winner":"dp","sequence":[0,1],"certified":true}}}`)
	f.Add(`{"jobs":1,"shapes":1,"results":[{"index":0}]}`)
	f.Add(`{"jobs":1,"shapes":1,"results":[{"index":0,` +
		`"result":{"n":1,"report":{"best":{"winner":"dp","sequence":[0],"certified":true}}},` +
		`"error":{"kind":"both"}}]}`)
	// Truncation artifacts (what chaos.NetTruncate produces) and junk.
	f.Add(`{"model":"qon","n":3,"report":{"best":{"winner":"dp","seq`)
	f.Add(`{}`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		data := []byte(input)

		if res, err := decodeWorkerResult(data); err == nil {
			// Accepted results carry the full certified-permutation
			// contract, and re-encoding must not lose it.
			if err := validateResult(res); err != nil {
				t.Fatalf("decoder accepted a result its own validator rejects: %v", err)
			}
			redo, err := json.Marshal(res)
			if err != nil {
				t.Fatalf("accepted result does not re-encode: %v", err)
			}
			if _, err := decodeWorkerResult(redo); err != nil {
				t.Fatalf("accepted result fails a decode round trip: %v", err)
			}
		}

		if doc, err := decodeWorkerError(data); err == nil {
			if doc.Error.Kind == "" {
				t.Fatal("decoder accepted an error document without a kind")
			}
			redo, err := json.Marshal(doc)
			if err != nil {
				t.Fatalf("accepted error document does not re-encode: %v", err)
			}
			if _, err := decodeWorkerError(redo); err != nil {
				t.Fatalf("accepted error document fails a decode round trip: %v", err)
			}
		}

		for _, want := range []int{1, 2, 8} {
			br, err := decodeWorkerBatch(data, want)
			if err != nil {
				continue
			}
			if len(br.Results) != want {
				t.Fatalf("decoder accepted %d results when %d jobs were sent", len(br.Results), want)
			}
			for k, jr := range br.Results {
				if (jr.Result == nil) == (jr.Error == nil) {
					t.Fatalf("job %d: accepted without exactly one of result/error", k)
				}
				if jr.Result != nil {
					if err := validateResult(jr.Result); err != nil {
						t.Fatalf("job %d: accepted result fails validation: %v", k, err)
					}
				} else if jr.Error.Kind == "" {
					t.Fatalf("job %d: accepted error document without a kind", k)
				}
			}
		}
	})
}
