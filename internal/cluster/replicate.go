package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"approxqo/internal/cluster/replica"
)

// Replication orchestration: the coordinator names each forwarded
// job's replica set (the ring successors of its key) in the
// X-Replicate-To header — the owning worker fans certified results out
// asynchronously — and owns the two recovery paths that keep the copy
// count honest across membership changes and partitions:
//
//   - hinted handoff (JoinWorker/RetireWorker): before the ring flips
//     traffic, the keyspace whose ownership moves is streamed from a
//     surviving replica to the new owner, bounded by HandoffEntries
//     and HandoffTimeout. Serving never blocks on it — a handoff that
//     fails or exceeds its budget just leaves the warm gauge at 0 for
//     anti-entropy to finish.
//   - anti-entropy (StartRepair/RepairOnce): replica pairs exchange
//     per-vnode key digests; divergent arcs trade key lists and the
//     missing entries are read-repaired. Every repair transfer
//     withdraws one token from the global retry budget, so repair
//     traffic is priced exactly like retries and can never starve
//     serving.

// errHandoffBudget marks a handoff cut short by HandoffEntries.
var errHandoffBudget = errors.New("cluster: handoff transfer budget exhausted")

// replicaPeers names the workers (beyond the serving one) that should
// hold key's certified result: the first Replicas distinct ring
// successors. Nil when replication is disabled or the fleet is too
// small to hold a second copy.
func (c *Coordinator) replicaPeers(key, serving string) []string {
	if c.cfg.Replicas <= 0 {
		return nil
	}
	owners := c.ring.Lookup(key, c.cfg.Replicas+1)
	peers := make([]string, 0, c.cfg.Replicas)
	for _, w := range owners {
		if w != serving && len(peers) < c.cfg.Replicas {
			peers = append(peers, w)
		}
	}
	return peers
}

// JoinWorker adds a worker with hinted handoff: the keyspace arcs the
// new membership assigns to it are streamed from their current owners
// first, then the ring flips traffic. It returns the entries streamed.
// A handoff error (sources unreachable, transfer budget exhausted)
// still joins the worker — cold, with the warm gauge at 0 until
// anti-entropy repairs the gap — because a worker the fleet needs now
// must not wait on a perfect warmup.
func (c *Coordinator) JoinWorker(ctx context.Context, worker string) (int, error) {
	// Membership changes are serialized: the ownership delta is computed
	// from a ring snapshot, and a concurrent change would stream keyspace
	// against a ring that no longer exists. The generation bump plus the
	// handoff counter keep a concurrent RepairOnce from flipping the warm
	// gauge mid-change.
	c.mmu.Lock()
	defer c.mmu.Unlock()
	c.warmGen.Add(1)
	if c.cfg.Replicas <= 0 || c.ring.Size() == 0 {
		c.ring.Add(worker)
		return 0, nil
	}
	c.handoffs.Add(1)
	defer c.handoffs.Add(-1)
	next := c.ring.Clone()
	next.Add(worker)
	delta := OwnershipDelta(c.ring, next)
	c.setWarm(false)
	moved, err := c.streamHandoff(ctx, delta, worker, "")
	c.ring.Add(worker)
	if err == nil {
		c.setWarm(true)
	}
	return moved, err
}

// RetireWorker removes a worker with hinted handoff: the arcs it owned
// are streamed to their new owners from the surviving replicas (never
// from the retiree, which may already be dead) before the ring drops
// it. Like JoinWorker, failure degrades to a cold removal plus
// anti-entropy, never a refusal.
func (c *Coordinator) RetireWorker(ctx context.Context, worker string) (int, error) {
	c.mmu.Lock()
	defer c.mmu.Unlock()
	c.warmGen.Add(1)
	c.handoffs.Add(1)
	defer c.handoffs.Add(-1)
	next := c.ring.Clone()
	next.Remove(worker)
	var moved int
	var err error
	if c.cfg.Replicas > 0 && next.Size() > 0 {
		delta := OwnershipDelta(c.ring, next)
		c.setWarm(false)
		moved, err = c.streamHandoff(ctx, delta, "", worker)
	}
	c.ring.Remove(worker)
	c.health.forget(worker)
	if err == nil {
		c.setWarm(true)
	}
	return moved, err
}

// streamHandoff streams every moved arc's keys to its new owner:
// sources are the arc's owners under the current (pre-flip) ring,
// minus the excluded worker. onlyTo restricts the stream to arcs
// moving to one destination (join); exclude names a worker never to
// read from or write to (retire). The first error is reported but the
// remaining arcs are still attempted — partial warmth beats none.
func (c *Coordinator) streamHandoff(ctx context.Context, delta []MovedRange, onlyTo, exclude string) (int, error) {
	hctx, cancel := context.WithTimeout(ctx, c.cfg.HandoffTimeout)
	defer cancel()
	m := c.cfg.Metrics
	budget := c.cfg.HandoffEntries
	moved := 0
	var firstErr error
	for _, mr := range delta {
		if onlyTo != "" && mr.To != onlyTo {
			continue
		}
		if mr.To == exclude {
			continue
		}
		if budget <= 0 {
			m.Counter(MetricHandoffDenied).Inc()
			if firstErr == nil {
				firstErr = errHandoffBudget
			}
			break
		}
		streamed := false
		var arcErr error
		for _, src := range c.ring.OwnersAt(mr.Range.Hi, c.cfg.Replicas+1) {
			if src == exclude || src == mr.To {
				continue
			}
			keys, err := c.fetchKeys(hctx, src, []replica.Range{mr.Range}, budget)
			if err != nil {
				arcErr = err
				continue
			}
			if len(keys) == 0 {
				streamed = true // the arc holds nothing to move
				break
			}
			entries, err := c.fetchExport(hctx, src, keys)
			if err != nil {
				arcErr = err
				continue
			}
			n, err := c.sendOffer(hctx, mr.To, entries)
			if err != nil {
				arcErr = err
				continue
			}
			moved += n
			budget -= len(entries)
			m.Counter(MetricHandoff).Add(int64(n))
			streamed = true
			break
		}
		if !streamed && firstErr == nil {
			firstErr = fmt.Errorf("cluster: handoff of arc (%x,%x] to %s found no source: %w",
				mr.Range.Lo, mr.Range.Hi, mr.To, arcErr)
		}
	}
	return moved, firstErr
}

// StartRepair launches the background anti-entropy loop; it stops when
// ctx is cancelled. Disabled replication or a non-positive
// RepairInterval makes this a no-op.
func (c *Coordinator) StartRepair(ctx context.Context) {
	if c.cfg.Replicas <= 0 || c.cfg.RepairInterval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(c.cfg.RepairInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.RepairOnce(ctx)
			}
		}
	}()
}

// RepairOnce runs one anti-entropy pass: per vnode arc, the owner's and
// successors' digests are compared; divergent arcs exchange key lists
// and the union minus each member's holdings is read-repaired onto it.
// Each transfer (one export+offer pair) withdraws a retry-budget token
// first — when the bucket is dry the pass stops and the divergence
// waits for the next round. A pass that finds every reachable replica
// converged restores the warm gauge. It reports divergent arcs found
// and entries repaired.
func (c *Coordinator) RepairOnce(ctx context.Context) (diverged, repaired int) {
	if c.cfg.Replicas <= 0 {
		return 0, 0
	}
	// Snapshot the membership generation: if a Join/Retire lands while
	// this pass runs, its conclusion describes a ring that no longer
	// exists and must not flip the warm gauge.
	gen := c.warmGen.Load()
	m := c.cfg.Metrics
	m.Counter(MetricRepairRounds).Inc()
	owned := c.ring.OwnedRanges(c.cfg.Replicas)
	if len(owned) == 0 {
		return 0, 0
	}

	// One digest round trip per worker, covering every arc it
	// participates in (as owner or successor), in arc order.
	arcsOf := make(map[string][]int) // worker → indices into owned
	for i, or := range owned {
		if len(or.Successors) == 0 {
			continue // single-member fleet: nothing to compare
		}
		arcsOf[or.Owner] = append(arcsOf[or.Owner], i)
		for _, s := range or.Successors {
			arcsOf[s] = append(arcsOf[s], i)
		}
	}
	digests := make(map[string]map[int]replica.RangeDigest) // worker → arc index → digest
	for w, idxs := range arcsOf {
		ranges := make([]replica.Range, len(idxs))
		for k, i := range idxs {
			ranges[k] = owned[i].Range
		}
		ds, err := c.fetchDigests(ctx, w, ranges)
		if err != nil || len(ds) != len(idxs) {
			continue // unreachable worker: its arcs are skipped this round
		}
		byArc := make(map[int]replica.RangeDigest, len(idxs))
		for k, i := range idxs {
			byArc[i] = ds[k]
		}
		digests[w] = byArc
	}

	clean := true
	for i, or := range owned {
		if len(or.Successors) == 0 {
			continue
		}
		members := append([]string{or.Owner}, or.Successors...)
		var ref *replica.RangeDigest
		mismatch, reachable := false, 0
		for _, w := range members {
			d, ok := digests[w]
			if !ok {
				clean = false // can't prove this arc converged
				continue
			}
			reachable++
			dd := d[i]
			if ref == nil {
				ref = &dd
			} else if dd != *ref {
				mismatch = true
			}
		}
		if !mismatch || reachable < 2 {
			continue
		}
		diverged++
		m.Counter(MetricRepairRanges).Inc()
		n, ok := c.repairArc(ctx, or, members, digests)
		repaired += n
		if !ok {
			clean = false
			if n == 0 {
				return diverged, repaired // budget dry: stop the whole pass
			}
		}
	}
	if clean && diverged == 0 && c.handoffs.Load() == 0 && c.warmGen.Load() == gen {
		c.setWarm(true)
	}
	return diverged, repaired
}

// repairArc read-repairs one divergent arc: fetch each reachable
// member's keys, then ship every member the keys it is missing from
// the first member that holds them. The bool result is false when the
// retry budget refused a transfer (the pass should wind down).
func (c *Coordinator) repairArc(ctx context.Context, or OwnedRange, members []string, digests map[string]map[int]replica.RangeDigest) (int, bool) {
	m := c.cfg.Metrics
	keysOf := make(map[string]map[string]bool, len(members))
	var union []string
	seen := make(map[string]bool)
	for _, w := range members {
		if _, ok := digests[w]; !ok {
			continue // unreachable for digests; don't guess its contents
		}
		keys, err := c.fetchKeys(ctx, w, []replica.Range{or.Range}, replica.DefaultMaxOfferEntries)
		if err != nil {
			continue
		}
		set := make(map[string]bool, len(keys))
		for _, k := range keys {
			set[k] = true
			if !seen[k] {
				seen[k] = true
				union = append(union, k)
			}
		}
		keysOf[w] = set
	}
	repaired := 0
	for _, dst := range members {
		have, ok := keysOf[dst]
		if !ok {
			continue
		}
		// Group dst's missing keys by the first member that holds them,
		// one export+offer per source.
		bySrc := make(map[string][]string)
		for _, k := range union {
			if have[k] {
				continue
			}
			for _, src := range members {
				if src != dst && keysOf[src] != nil && keysOf[src][k] {
					bySrc[src] = append(bySrc[src], k)
					break
				}
			}
		}
		for src, keys := range bySrc {
			if !c.budget.withdraw() {
				m.Counter(MetricRepairDenied).Inc()
				return repaired, false
			}
			m.Counter(MetricRepairXfers).Inc()
			entries, err := c.fetchExport(ctx, src, keys)
			if err != nil || len(entries) == 0 {
				continue
			}
			n, err := c.sendOffer(ctx, dst, entries)
			if err != nil {
				continue
			}
			repaired += n
			m.Counter(MetricRepairEntries).Add(int64(n))
		}
	}
	return repaired, true
}

// postJSON is one coordinator→worker replication round trip: POST the
// encoded body to worker+path, require a 200, decode into out.
func (c *Coordinator) postJSON(ctx context.Context, worker, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s body: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(replica.AuthHeader, c.cfg.ClusterSecret)
	resp, err := c.client.Do(hreq)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("cluster: reading %s response from %s: %w", path, worker, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s from %s: status %d", path, worker, resp.StatusCode)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cluster: decoding %s response from %s: %w", path, worker, err)
	}
	return nil
}

// fetchKeys lists worker's cache keys on the given arcs, up to limit.
func (c *Coordinator) fetchKeys(ctx context.Context, worker string, ranges []replica.Range, limit int) ([]string, error) {
	var out replica.KeysResponse
	if err := c.postJSON(ctx, worker, "/cache/keys", &replica.KeysRequest{Ranges: ranges, Limit: limit}, &out); err != nil {
		return nil, err
	}
	return out.Keys, nil
}

// fetchDigests fetches worker's per-arc digests, one per range in
// order.
func (c *Coordinator) fetchDigests(ctx context.Context, worker string, ranges []replica.Range) ([]replica.RangeDigest, error) {
	var out replica.DigestResponse
	if err := c.postJSON(ctx, worker, "/cache/digest", &replica.DigestRequest{Ranges: ranges}, &out); err != nil {
		return nil, err
	}
	return out.Digests, nil
}

// fetchExport pulls full entries by key, re-validating each at the
// trust boundary — a divergent replica's export is no more trusted
// than a worker 200 — and dropping the invalid ones.
func (c *Coordinator) fetchExport(ctx context.Context, worker string, keys []string) ([]*replica.Entry, error) {
	var out replica.ExportResponse
	if err := c.postJSON(ctx, worker, "/cache/export", &replica.ExportRequest{Keys: keys}, &out); err != nil {
		return nil, err
	}
	valid := out.Entries[:0]
	for _, e := range out.Entries {
		if e.Validate() == nil {
			valid = append(valid, e)
		}
	}
	return valid, nil
}

// sendOffer offers entries to worker, chunked under the offer cap,
// returning how many the receiver accepted.
func (c *Coordinator) sendOffer(ctx context.Context, worker string, entries []*replica.Entry) (int, error) {
	accepted := 0
	for len(entries) > 0 {
		chunk := entries
		if len(chunk) > replica.DefaultMaxOfferEntries {
			chunk = chunk[:replica.DefaultMaxOfferEntries]
		}
		entries = entries[len(chunk):]
		var out replica.OfferResponse
		if err := c.postJSON(ctx, worker, "/cache/offer", &replica.OfferRequest{From: "coordinator", Entries: chunk}, &out); err != nil {
			return accepted, err
		}
		accepted += out.Accepted
	}
	return accepted, nil
}

// replicateToHeader renders the replica set for a forwarded job, or ""
// when there are no peers to name.
func replicateToHeader(peers []string) string { return strings.Join(peers, ",") }
