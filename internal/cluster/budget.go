package cluster

import (
	"sort"
	"sync"
	"time"
)

// retryBudget is a token bucket shared by every retry and hedge the
// coordinator issues. Each incoming client request deposits ratio
// tokens (capped at burst); each retry or hedge withdraws one whole
// token or is denied. The invariant the chaos soak asserts falls
// straight out: upstream attempts ≤ requests + burst + ratio·requests —
// a down shard can cost a bounded retry premium, never a retry storm
// that multiplies the fleet's load when it is least able to absorb it.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

// DefaultRetryRatio and DefaultRetryBurst shape the default budget:
// retries may add at most 20% to upstream load, with a 10-token burst
// so a cold coordinator can still fail over its first requests.
const (
	DefaultRetryRatio = 0.2
	DefaultRetryBurst = 10
)

func newRetryBudget(ratio float64, burst int) *retryBudget {
	if ratio <= 0 {
		ratio = DefaultRetryRatio
	}
	if burst <= 0 {
		burst = DefaultRetryBurst
	}
	return &retryBudget{tokens: float64(burst), ratio: ratio, burst: float64(burst)}
}

// deposit credits one incoming request's share.
func (b *retryBudget) deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// withdraw takes one token if available; a false return means the
// retry (or hedge) must not be issued.
func (b *retryBudget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund returns one withdrawn token, capped at burst. Only for
// attempts cancelled before completing any upstream work — a hedge
// whose race was decided by the other arm. A completed-but-failed
// attempt is never refunded: it consumed real worker capacity, which
// is exactly what the budget prices.
func (b *retryBudget) refund() {
	b.mu.Lock()
	b.tokens++
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// balance reports the current token count (tests).
func (b *retryBudget) balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// latencyTracker keeps a sliding window of successful upstream
// latencies and serves the adaptive hedge delay: hedge after the
// observed p95, so hedges chase only the tail — ~5% of requests — and
// the retry budget, which hedges share, stays priced for the tail too.
type latencyTracker struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

// latencyWindow is the sample window; 128 recent latencies make the
// p95 responsive to load shifts without jitter from any single slow
// request.
const latencyWindow = 128

// latencyMinSamples gates the adaptive delay: below it the tracker has
// no opinion and the configured fallback applies.
const latencyMinSamples = 8

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{buf: make([]time.Duration, latencyWindow)}
}

func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// p95 reports the 95th-percentile latency of the window, or fallback
// below latencyMinSamples. The result is clamped to [lo, hi].
func (l *latencyTracker) p95(fallback, lo, hi time.Duration) time.Duration {
	l.mu.Lock()
	n := l.n
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	d := fallback
	if n >= latencyMinSamples {
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		d = tmp[(n*95)/100]
	}
	if d < lo {
		d = lo
	}
	if hi > 0 && d > hi {
		d = hi
	}
	return d
}
