package replica

import (
	"encoding/json"
	"testing"
)

// FuzzCacheOfferJSON fuzzes the replication decoder — the trust
// boundary between cache replicas. A partitioned peer, a chaos fault
// or a hostile client can POST any byte soup to /cache/offer; the
// decoder must never panic, never hand back a null entry, and every
// entry that passes Validate must survive a marshal→decode→Validate
// round trip (a replicated entry re-offered downstream must still be
// acceptable).
func FuzzCacheOfferJSON(f *testing.F) {
	// A well-formed single-entry offer, the async fan-out's shape.
	f.Add(`{"from":"http://w1:8081","entries":[{"key":"qon:3:deadbeef","raw_key":"ab12",` +
		`"report":{"model":"qon","n":3,"best":{"winner":"dp","sequence":[2,0,1],` +
		`"cost":"42","cost_log2":5.39,"exact":true,"certified":true},"runs":[]}}]}`)
	// A handoff-shaped multi-entry offer.
	f.Add(`{"entries":[` +
		`{"key":"qon:1:aa","report":{"model":"qon","n":1,"best":{"winner":"greedy","sequence":[0],"cost":"7","certified":true}}},` +
		`{"key":"qoh:2:bb","report":{"model":"qoh","n":2,"best":{"winner":"qoh-dp","sequence":[1,0],"cost":"9","certified":true}}}]}`)
	// Rejectable entries: uncertified, costless, truncated permutation,
	// model mismatch, bad key shapes (including the pre-binding
	// model:fingerprint format), key↔report size mismatch, implausible n.
	f.Add(`{"entries":[{"key":"qon:2:ff","report":{"n":2,"best":{"winner":"dp","sequence":[0,1],"certified":false}}}]}`)
	f.Add(`{"entries":[{"key":"qon:2:ff","report":{"n":2,"best":{"winner":"dp","sequence":[0,1],"certified":true}}}]}`)
	f.Add(`{"entries":[{"key":"qon:3:ff","report":{"n":3,"best":{"winner":"dp","sequence":[0,1],"cost":"4","certified":true}}}]}`)
	f.Add(`{"entries":[{"key":"qon:1:ff","report":{"model":"qoh","n":1,"best":{"winner":"dp","sequence":[0],"cost":"4","certified":true}}}]}`)
	f.Add(`{"entries":[{"key":"qon:ff","report":{"n":1,"best":{"winner":"dp","sequence":[0],"cost":"4","certified":true}}}]}`)
	f.Add(`{"entries":[{"key":"qon:9:ff","report":{"n":2,"best":{"winner":"dp","sequence":[0,1],"cost":"4","certified":true}}}]}`)
	f.Add(`{"entries":[{"key":"qon:x:ff","report":{"n":2,"best":{"winner":"dp","sequence":[0,1],"cost":"4","certified":true}}}]}`)
	f.Add(`{"entries":[{"key":"nocolon","report":{"n":1,"best":{"winner":"dp","sequence":[0],"cost":"4","certified":true}}}]}`)
	f.Add(`{"entries":[{"key":"qon:1:","report":null}]}`)
	f.Add(`{"entries":[{"key":"qon:1048577:ff","report":{"n":1048577,"best":{"winner":"dp","certified":true}}}]}`)
	// Structural rejects: null entry, empty array, overlong array shape.
	f.Add(`{"entries":[null]}`)
	f.Add(`{"entries":[]}`)
	f.Add(`{"from":"x"}`)
	// Truncation artifacts (chaos.NetTruncate) and junk.
	f.Add(`{"entries":[{"key":"qon:deadbeef","report":{"best":{"winner":"dp","seq`)
	f.Add(`{}`)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		off, err := DecodeOffer([]byte(input), 0)
		if err != nil {
			return
		}
		if len(off.Entries) == 0 || len(off.Entries) > DefaultMaxOfferEntries {
			t.Fatalf("decoder accepted %d entries", len(off.Entries))
		}
		for i, e := range off.Entries {
			if e == nil {
				t.Fatalf("decoder handed back null entry %d", i)
			}
			if e.Validate() != nil {
				continue // the accept/reject loop drops it; nothing to round-trip
			}
			// An accepted entry must survive re-offering: marshal, decode,
			// validate again.
			redo, err := json.Marshal(&OfferRequest{Entries: []*Entry{e}})
			if err != nil {
				t.Fatalf("entry %d does not re-encode: %v", i, err)
			}
			again, err := DecodeOffer(redo, 0)
			if err != nil {
				t.Fatalf("entry %d fails a decode round trip: %v", i, err)
			}
			if err := again.Entries[0].Validate(); err != nil {
				t.Fatalf("entry %d fails validation after a round trip: %v", i, err)
			}
		}
	})
}
