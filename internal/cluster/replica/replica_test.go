package replica

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"approxqo/internal/engine"
	"approxqo/internal/num"
)

// validEntry builds a certified n-relation entry for key.
func validEntry(key string, n int) *Entry {
	seq := make([]int, n)
	for i := range seq {
		seq[i] = (i + 1) % n // a non-identity permutation
	}
	return &Entry{
		Key:    key,
		RawKey: "raw-" + key,
		Report: &engine.Report{
			Model: "qon",
			N:     n,
			Best: &engine.BestRecord{
				Winner:    "dp",
				Sequence:  seq,
				Cost:      num.FromInt64(42),
				Certified: true,
			},
		},
	}
}

func TestRangeContains(t *testing.T) {
	cases := []struct {
		r    Range
		h    uint64
		want bool
	}{
		{Range{10, 20}, 10, false}, // half-open: Lo excluded
		{Range{10, 20}, 11, true},
		{Range{10, 20}, 20, true}, // Hi included
		{Range{10, 20}, 21, false},
		{Range{20, 10}, 25, true}, // wrap: above Lo
		{Range{20, 10}, 5, true},  // wrap: below Hi
		{Range{20, 10}, 15, false},
		{Range{20, 10}, 0, true},
		{Range{7, 7}, 7, true}, // degenerate = full circle
		{Range{7, 7}, 123456, true},
	}
	for _, c := range cases {
		if got := c.r.Contains(c.h); got != c.want {
			t.Errorf("Range{%d,%d}.Contains(%d) = %v, want %v", c.r.Lo, c.r.Hi, c.h, got, c.want)
		}
	}
}

func TestEntryValidateAcceptsCertified(t *testing.T) {
	if err := validEntry("qon:3:deadbeef", 3).Validate(); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	if err := validEntry("qoh:2:cafe", 2).Validate(); err == nil {
		t.Fatal("qoh key with qon report model accepted")
	}
	qoh := validEntry("qoh:2:cafe", 2)
	qoh.Report.Model = "qoh"
	if err := qoh.Validate(); err != nil {
		t.Fatalf("valid qoh entry rejected: %v", err)
	}
	if Key("qon", 3, "deadbeef") != "qon:3:deadbeef" {
		t.Fatalf("Key rendered %q", Key("qon", 3, "deadbeef"))
	}
}

func TestEntryValidateRejectsBrokenEntries(t *testing.T) {
	breakers := map[string]func(*Entry){
		"nil report":     func(e *Entry) { e.Report = nil },
		"nil best":       func(e *Entry) { e.Report.Best = nil },
		"uncertified":    func(e *Entry) { e.Report.Best.Certified = false },
		"no cost":        func(e *Entry) { e.Report.Best.Cost = num.Num{} },
		"bad key":        func(e *Entry) { e.Key = "nocolon" },
		"missing n":      func(e *Entry) { e.Key = "qon:deadbeef" }, // pre-binding key format
		"empty fp":       func(e *Entry) { e.Key = "qon:3:" },
		"unknown model":  func(e *Entry) { e.Key = "sql:3:deadbeef" },
		"model mismatch": func(e *Entry) { e.Key = "qoh:3:deadbeef" },
		"key n mismatch": func(e *Entry) { e.Key = "qon:4:deadbeef" },
		"huge key n":     func(e *Entry) { e.Key = fmt.Sprintf("qon:%d:deadbeef", maxEntryN+1) },
		"non-numeric n":  func(e *Entry) { e.Key = "qon:x:deadbeef" },
		"negative n":     func(e *Entry) { e.Key = "qon:-3:deadbeef" },
		"zero n":         func(e *Entry) { e.Report.N = 0; e.Report.Best.Sequence = nil },
		"huge n":         func(e *Entry) { e.Report.N = maxEntryN + 1 },
		"short sequence": func(e *Entry) { e.Report.Best.Sequence = e.Report.Best.Sequence[:2] },
		"repeated label": func(e *Entry) { e.Report.Best.Sequence = []int{0, 0, 1} },
		"label range":    func(e *Entry) { e.Report.Best.Sequence = []int{0, 1, 3} },
		"long fp":        func(e *Entry) { e.Key = "qon:3:" + string(make([]byte, 200)) },
	}
	for name, brk := range breakers {
		e := validEntry("qon:3:deadbeef", 3)
		brk(e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: broken entry accepted", name)
		}
	}
	var nilEntry *Entry
	if err := nilEntry.Validate(); err == nil {
		t.Error("nil entry accepted")
	}
}

func TestDecodeOfferBounds(t *testing.T) {
	body, _ := json.Marshal(&OfferRequest{From: "w1", Entries: []*Entry{validEntry("qon:2:ff", 2)}})
	off, err := DecodeOffer(body, 0)
	if err != nil {
		t.Fatalf("valid offer rejected: %v", err)
	}
	if len(off.Entries) != 1 || off.From != "w1" {
		t.Fatalf("offer decoded wrong: %+v", off)
	}
	for _, bad := range []string{
		`{"entries":[]}`,
		`{"entries":null}`,
		`{"entries":[null]}`,
		`not json`,
	} {
		if _, err := DecodeOffer([]byte(bad), 0); err == nil {
			t.Errorf("DecodeOffer accepted %q", bad)
		}
	}
	two, _ := json.Marshal(&OfferRequest{Entries: []*Entry{validEntry("qon:2:a1", 2), validEntry("qon:2:b2", 2)}})
	if _, err := DecodeOffer(two, 1); err == nil {
		t.Error("DecodeOffer ignored maxEntries")
	}
}

func TestDigestRangesDetectsDivergence(t *testing.T) {
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("qon:%08x", i*2654435761)
	}
	full := []Range{{0, 0}}
	d1 := DigestRanges(keys, full)
	if d1[0].Count != len(keys) {
		t.Fatalf("full-circle digest counted %d of %d keys", d1[0].Count, len(keys))
	}
	// Order independence: a permuted key list digests identically.
	rev := make([]string, len(keys))
	for i, k := range keys {
		rev[len(keys)-1-i] = k
	}
	if d2 := DigestRanges(rev, full); d2[0] != d1[0] {
		t.Fatalf("digest is order-dependent: %+v vs %+v", d1[0], d2[0])
	}
	// Divergence: dropping one key changes the digest.
	if d3 := DigestRanges(keys[1:], full); d3[0].Digest == d1[0].Digest {
		t.Fatal("digest did not change when a key was dropped")
	}
	// Range partition: two complementary halves cover every key once.
	mid := uint64(1) << 63
	halves := DigestRanges(keys, []Range{{0, mid}, {mid, 0}})
	if halves[0].Count+halves[1].Count != len(keys) {
		t.Fatalf("complementary ranges cover %d keys, want %d", halves[0].Count+halves[1].Count, len(keys))
	}
	if halves[0].Count == 0 || halves[1].Count == 0 {
		t.Fatalf("splitmix-scattered keys all fell in one half: %+v", halves)
	}
}

// The bisecting DigestRanges must agree exactly with the naive
// per-key Contains scan it replaced, over random keys and every range
// shape (contiguous, wrapping, full circle, empty).
func TestDigestRangesMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	naive := func(keys []string, ranges []Range) []RangeDigest {
		acc := make([]uint64, len(ranges))
		counts := make([]int, len(ranges))
		for _, k := range keys {
			h := KeyHash(k)
			for i, r := range ranges {
				if r.Contains(h) {
					acc[i] ^= mix64(h)
					counts[i]++
				}
			}
		}
		out := make([]RangeDigest, len(ranges))
		for i := range out {
			out[i] = RangeDigest{Digest: strconv.FormatUint(acc[i], 16), Count: counts[i]}
		}
		return out
	}
	for trial := 0; trial < 50; trial++ {
		keys := make([]string, rng.Intn(40))
		for i := range keys {
			keys[i] = fmt.Sprintf("qon:%d:%08x", 2+rng.Intn(9), rng.Uint32())
		}
		ranges := make([]Range, 1+rng.Intn(8))
		for i := range ranges {
			switch rng.Intn(4) {
			case 0: // full circle
				p := rng.Uint64()
				ranges[i] = Range{p, p}
			case 1: // wrap through zero
				lo, hi := rng.Uint64()|1<<63, rng.Uint64()&^(1<<63)
				ranges[i] = Range{lo, hi}
			default:
				lo, hi := rng.Uint64(), rng.Uint64()
				if lo > hi {
					lo, hi = hi, lo
				}
				if lo == hi {
					hi++
				}
				ranges[i] = Range{lo, hi}
			}
		}
		got, want := DigestRanges(keys, ranges), naive(keys, ranges)
		for i := range ranges {
			if got[i] != want[i] {
				t.Fatalf("trial %d range %d (%x,%x]: bisect %+v != naive %+v over %d keys",
					trial, i, ranges[i].Lo, ranges[i].Hi, got[i], want[i], len(keys))
			}
		}
	}
}

func TestKeyHashScatters(t *testing.T) {
	// Near-identical keys (the vnode naming pattern) must not cluster:
	// with the finalizer, 64 suffixes split around the midpoint.
	lowHalf := 0
	for i := 0; i < 64; i++ {
		if KeyHash(fmt.Sprintf("http://w1:8081#%d", i)) < 1<<63 {
			lowHalf++
		}
	}
	if lowHalf < 16 || lowHalf > 48 {
		t.Fatalf("vnode hashes cluster: %d/64 in the low half", lowHalf)
	}
}
