// Package replica defines the wire protocol and keyspace arithmetic of
// the cluster's certified-result cache replication: the entry shape a
// worker offers its ring successors, the per-range digests anti-entropy
// compares, and the hash/range primitives the coordinator's ring and
// its ownership deltas are built on.
//
// The package sits below both internal/server (which serves the
// /cache/* endpoints and fans offers out) and internal/cluster (which
// orchestrates handoff and repair), so the two sides of every exchange
// validate with the same code. Validation here is the trust boundary:
// a replica accepts an offered entry only if it re-proves the serving
// layer's contract — certified winner, valid cost, permutation-valid
// sequence in canonical label space, and a cache key whose declared
// instance size matches the report's — mirroring the coordinator's
// checks on worker 200s. A corrupted or malicious offer is rejected
// entry by entry, never crashing the receiver (FuzzCacheOfferJSON pins
// this). On top of per-entry validation, every replication exchange is
// authenticated: peers prove cluster membership with the shared secret
// in the AuthHeader header, so the /cache/* surface is never open to
// arbitrary clients.
package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"approxqo/internal/engine"
)

// AuthHeader carries the cluster's shared replication secret on every
// replication exchange: the /cache/* endpoints (offer, digest, keys,
// export) refuse requests without it, and a worker honors the
// coordinator's X-Replicate-To fan-out hint only on requests that
// carry it. The secret is configured out of band (qod -cluster-secret
// on every member); a fleet without one simply runs with replication
// off rather than with an open cache-write surface.
const AuthHeader = "X-Cluster-Key"

// DefaultReplicas is how many ring successors each certified cache
// entry is copied to (R). Two successors mean an entry survives any
// single worker loss plus one concurrent partition, at a write
// amplification the async fan-out absorbs off the request path; full
// quorum schemes buy nothing more for a cache whose entries are
// immutable and re-derivable.
const DefaultReplicas = 2

// KeyHash maps a cache key (model:n:fingerprint) or ring vnode name to
// its position on the 64-bit hash ring. fnv-1a of near-identical
// strings clusters, so a splitmix64 finalizer scatters the positions;
// the cluster ring and the digest arithmetic share this single
// definition so ownership ranges computed by the coordinator match the
// ranges workers digest.
func KeyHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Range is a half-open arc (Lo, Hi] of the hash ring, wrapping through
// zero when Hi ≤ Lo. Lo == Hi denotes the full circle (the
// single-boundary degenerate case), matching how a one-point ring owns
// everything.
type Range struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// Contains reports whether hash h falls on the arc.
func (r Range) Contains(h uint64) bool {
	if r.Lo == r.Hi {
		return true
	}
	if r.Lo < r.Hi {
		return h > r.Lo && h <= r.Hi
	}
	return h > r.Lo || h <= r.Hi
}

// Key renders the canonical cache key: model, declared instance size,
// and the graph-invariant fingerprint, colon-separated. Encoding n in
// the key is what lets Validate bind a claimed key to its report — an
// offer whose report disagrees with the size its own key declares is
// rejected at the trust boundary instead of lying dormant until a
// cache hit trips over it.
func Key(model string, n int, fp string) string {
	return model + ":" + strconv.Itoa(n) + ":" + fp
}

// Entry is one replicated cache entry: the canonical cache key
// (model:n:fingerprint, see Key), the raw source key of the producing
// request (canonical-hit attribution travels with the entry), and the
// full engine report in canonical label space.
type Entry struct {
	Key    string         `json:"key"`
	RawKey string         `json:"raw_key,omitempty"`
	Report *engine.Report `json:"report"`
}

// maxEntryN mirrors the coordinator's plausibility cap on instance
// sizes (validateResult); a report claiming more relations is corrupt
// or hostile, not large.
const maxEntryN = 1 << 20

// Validate re-proves the serving contract on one offered entry. Every
// acceptor (worker /cache/offer, coordinator export fetch) must call it
// before trusting the entry: replication moves certified results
// between caches, and an entry that fails any check would let a
// corrupted replica poison a healthy one.
func (e *Entry) Validate() error {
	if e == nil {
		return errors.New("null entry")
	}
	model, rest, ok := strings.Cut(e.Key, ":")
	if !ok {
		return fmt.Errorf("entry key %q is not model:n:fingerprint", e.Key)
	}
	nStr, fp, ok := strings.Cut(rest, ":")
	if !ok || fp == "" {
		return fmt.Errorf("entry key %q is not model:n:fingerprint", e.Key)
	}
	if model != "qon" && model != "qoh" {
		return fmt.Errorf("entry key has unknown model %q", model)
	}
	keyN, err := strconv.Atoi(nStr)
	if err != nil || keyN < 1 || keyN > maxEntryN {
		return fmt.Errorf("entry key declares implausible instance size %q", nStr)
	}
	if len(fp) > 128 {
		return fmt.Errorf("entry fingerprint is %d bytes, cap is 128", len(fp))
	}
	rep := e.Report
	if rep == nil || rep.Best == nil {
		return errors.New("entry has no winning plan")
	}
	if rep.Model != "" && rep.Model != model {
		return fmt.Errorf("entry key model %q disagrees with report model %q", model, rep.Model)
	}
	best := rep.Best
	if !best.Certified {
		return fmt.Errorf("winner %q is not certified", best.Winner)
	}
	if !best.Cost.IsValid() {
		return fmt.Errorf("winner %q carries no plan cost", best.Winner)
	}
	if rep.N < 1 || rep.N > maxEntryN {
		return fmt.Errorf("implausible instance size %d", rep.N)
	}
	if rep.N != keyN {
		// The key↔report binding: a report stored under a key declaring a
		// different size could crash the serving layer's label remap on a
		// later hit, so the mismatch is refused here, at the boundary.
		return fmt.Errorf("entry key declares n=%d, report has n=%d", keyN, rep.N)
	}
	if len(best.Sequence) != rep.N {
		return fmt.Errorf("winning sequence has %d relations, instance has %d", len(best.Sequence), rep.N)
	}
	seen := make([]bool, rep.N)
	for _, r := range best.Sequence {
		if r < 0 || r >= rep.N || seen[r] {
			return fmt.Errorf("winning sequence %v is not a permutation", best.Sequence)
		}
		seen[r] = true
	}
	return nil
}

// OfferRequest is the body of POST /cache/offer: entries a peer (the
// owning worker's async fan-out, or the coordinator's handoff/repair
// streams) wants this replica to hold.
type OfferRequest struct {
	// From names the offering peer (diagnostic only; acceptance never
	// depends on it).
	From    string   `json:"from,omitempty"`
	Entries []*Entry `json:"entries"`
}

// OfferResponse reports the per-entry outcome of an offer: entries that
// passed re-validation and were stored, and entries rejected at the
// trust boundary.
type OfferResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

// DefaultMaxOfferEntries bounds one offer body; handoff and repair
// stream in chunks below it.
const DefaultMaxOfferEntries = 256

// DecodeOffer parses one offer body, applying the structural checks
// that precede per-entry validation: well-formed JSON, a non-empty
// entries array within maxEntries (≤ 0 means DefaultMaxOfferEntries),
// no null entries. Per-entry Validate is the caller's accept/reject
// loop — one bad entry must not void its neighbours.
func DecodeOffer(data []byte, maxEntries int) (*OfferRequest, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxOfferEntries
	}
	var off OfferRequest
	if err := json.Unmarshal(data, &off); err != nil {
		return nil, fmt.Errorf("decoding cache offer: %w", err)
	}
	if len(off.Entries) == 0 {
		return nil, errors.New("cache offer carries no entries")
	}
	if len(off.Entries) > maxEntries {
		return nil, fmt.Errorf("cache offer carries %d entries, cap is %d", len(off.Entries), maxEntries)
	}
	for i, e := range off.Entries {
		if e == nil {
			return nil, fmt.Errorf("cache offer entry %d is null", i)
		}
	}
	return &off, nil
}

// DigestRequest is the body of POST /cache/digest: the ring ranges the
// caller wants fingerprint digests for (anti-entropy compares one
// vnode arc at a time).
type DigestRequest struct {
	Ranges []Range `json:"ranges"`
}

// RangeDigest summarizes one range of a cache: an order-independent
// XOR fold of the keys' hashes plus the key count. Equal digests and
// counts mean the two replicas hold the same key set on that arc (up
// to a vanishing collision probability); divergence triggers a key
// exchange and read repair.
type RangeDigest struct {
	Digest string `json:"digest"`
	Count  int    `json:"count"`
}

// DigestResponse answers a DigestRequest, one digest per requested
// range in order.
type DigestResponse struct {
	Digests []RangeDigest `json:"digests"`
}

// MaxDigestRanges bounds one digest request (a 64-vnode worker has 64
// arcs; 4096 leaves room for large fleets without unbounded work).
const MaxDigestRanges = 4096

// DigestRanges computes the per-range digests of a key set. The fold
// re-mixes each key's ring hash so the digest is not simply the XOR of
// ring positions the caller already knows.
//
// Cost is O(keys·log keys + ranges·log keys), not O(keys·ranges): the
// key hashes are sorted once and each range is answered by binary
// search over a prefix-XOR array, so a request carrying the maximum
// range count cannot force a full key scan per range.
func DigestRanges(keys []string, ranges []Range) []RangeDigest {
	hs := make([]uint64, len(keys))
	for i, k := range keys {
		hs[i] = KeyHash(k)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	// px[i] is the XOR fold of the first i (sorted) hashes, re-mixed;
	// the fold of any contiguous hash interval is then px[j]^px[i].
	px := make([]uint64, len(hs)+1)
	for i, h := range hs {
		px[i+1] = px[i] ^ mix64(h)
	}
	n := len(hs)
	// upperBound is the number of hashes ≤ x.
	upperBound := func(x uint64) int {
		return sort.Search(n, func(i int) bool { return hs[i] > x })
	}
	out := make([]RangeDigest, len(ranges))
	for i, r := range ranges {
		var acc uint64
		var count int
		switch {
		case r.Lo == r.Hi: // full circle
			acc, count = px[n], n
		case r.Lo < r.Hi: // contiguous arc (Lo, Hi]
			i1, i2 := upperBound(r.Lo), upperBound(r.Hi)
			acc, count = px[i2]^px[i1], i2-i1
		default: // wraps through zero: (Lo, max] ∪ [0, Hi]
			i1, i2 := upperBound(r.Lo), upperBound(r.Hi)
			acc, count = (px[n]^px[i1])^px[i2], (n-i1)+i2
		}
		out[i] = RangeDigest{Digest: strconv.FormatUint(acc, 16), Count: count}
	}
	return out
}

// KeysRequest is the body of POST /cache/keys: list the cache keys
// falling in the given ranges, up to Limit (≤ 0 means
// DefaultMaxOfferEntries).
type KeysRequest struct {
	Ranges []Range `json:"ranges"`
	Limit  int     `json:"limit,omitempty"`
}

// KeysResponse answers a KeysRequest.
type KeysResponse struct {
	Keys []string `json:"keys"`
}

// ExportRequest is the body of POST /cache/export: fetch full entries
// by key (the pull half of handoff and read repair). Keys absent from
// the cache are silently omitted — eviction between the key exchange
// and the export is normal, not an error.
type ExportRequest struct {
	Keys []string `json:"keys"`
}

// ExportResponse answers an ExportRequest.
type ExportResponse struct {
	Entries []*Entry `json:"entries"`
}
