package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHealthStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	h := newHealthBoard(3, 2*time.Second, nil)
	h.now = func() time.Time { return now }
	const w = "http://w1"

	if h.stateOf(w) != StateHealthy || !h.routable(w) {
		t.Fatal("unseen worker must start healthy and routable")
	}
	h.observe(w, false)
	if h.stateOf(w) != StateSuspect {
		t.Fatalf("after 1 failure: %v, want suspect", h.stateOf(w))
	}
	if !h.routable(w) {
		t.Fatal("suspect workers must stay routable")
	}
	h.observe(w, true)
	if h.stateOf(w) != StateHealthy {
		t.Fatalf("success must close the circuit: %v", h.stateOf(w))
	}

	downs := 0
	h.onDown = func(string) { downs++ }
	for i := 0; i < 3; i++ {
		h.observe(w, false)
	}
	if h.stateOf(w) != StateDown {
		t.Fatalf("after 3 consecutive failures: %v, want down", h.stateOf(w))
	}
	if downs != 1 {
		t.Fatalf("down transitions fired %d times, want 1", downs)
	}
	if h.routable(w) {
		t.Fatal("down worker routable inside its cooldown")
	}
	h.observe(w, false) // more failures while down must not re-fire the hook
	if downs != 1 {
		t.Fatalf("repeat failure while down re-fired the hook (%d)", downs)
	}

	now = now.Add(3 * time.Second)
	if !h.routable(w) {
		t.Fatal("cooldown lapsed but the circuit did not half-open")
	}
	if h.stateOf(w) != StateDown {
		t.Fatal("half-open is a trial, not a state change")
	}
	h.observe(w, true)
	if h.stateOf(w) != StateHealthy || !h.routable(w) {
		t.Fatal("successful half-open trial must close the circuit")
	}
}

func TestHealthHalfOpenFailureReopens(t *testing.T) {
	now := time.Unix(1000, 0)
	h := newHealthBoard(2, time.Second, nil)
	h.now = func() time.Time { return now }
	const w = "http://w1"
	h.observe(w, false)
	h.observe(w, false)
	now = now.Add(1500 * time.Millisecond)
	if !h.routable(w) {
		t.Fatal("expected half-open")
	}
	h.observe(w, false) // trial fails
	if h.routable(w) {
		t.Fatal("failed trial must re-open the circuit for another cooldown")
	}
	now = now.Add(1500 * time.Millisecond)
	if !h.routable(w) {
		t.Fatal("second cooldown must half-open again")
	}
}

func TestHealthForgetAndSnapshot(t *testing.T) {
	h := newHealthBoard(3, time.Second, nil)
	h.observe("http://b", false)
	h.observe("http://a", false)
	snap := h.snapshot([]string{"http://b", "http://a", "http://c"})
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	if snap[0].Worker != "http://a" || snap[1].Worker != "http://b" || snap[2].Worker != "http://c" {
		t.Errorf("snapshot not sorted: %+v", snap)
	}
	if snap[0].State != "suspect" || snap[0].ConsecutiveFails != 1 {
		t.Errorf("snapshot[a] = %+v, want suspect/1", snap[0])
	}
	if snap[2].State != "healthy" {
		t.Errorf("unseen worker reported %q, want healthy", snap[2].State)
	}
	h.forget("http://a")
	if h.stateOf("http://a") != StateHealthy {
		t.Error("forget must reset a worker to healthy (fresh membership)")
	}
}

func TestRetryBudgetAccounting(t *testing.T) {
	b := newRetryBudget(0.5, 4)
	// Initial tokens = burst.
	for i := 0; i < 4; i++ {
		if !b.withdraw() {
			t.Fatalf("withdraw %d denied inside the burst", i)
		}
	}
	if b.withdraw() {
		t.Fatal("withdraw granted on an empty bucket")
	}
	b.deposit() // +0.5
	if b.withdraw() {
		t.Fatal("withdraw granted on a fractional token")
	}
	b.deposit() // 1.0
	if !b.withdraw() {
		t.Fatal("two deposits at ratio 0.5 must fund one retry")
	}
	// The bucket caps at burst: a quiet stretch cannot bank an unbounded
	// retry storm.
	for i := 0; i < 100; i++ {
		b.deposit()
	}
	granted := 0
	for b.withdraw() {
		granted++
	}
	if granted != 4 {
		t.Fatalf("full bucket funded %d retries, want burst=4", granted)
	}
}

func TestLatencyTrackerP95(t *testing.T) {
	l := newLatencyTracker()
	fallback, lo, hi := 5*time.Millisecond, time.Millisecond, time.Second
	if got := l.p95(fallback, lo, hi); got != fallback {
		t.Fatalf("empty tracker p95 = %v, want fallback %v", got, fallback)
	}
	// 100 samples: 1..100ms → p95 = 96ms (index 95 of the sorted window).
	for i := 1; i <= 100; i++ {
		l.observe(time.Duration(i) * time.Millisecond)
	}
	got := l.p95(fallback, lo, hi)
	if got < 90*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p95 of 1..100ms = %v, want ≈95ms", got)
	}
	if got := l.p95(fallback, lo, 20*time.Millisecond); got != 20*time.Millisecond {
		t.Errorf("p95 ignored the ceiling: %v", got)
	}
	l2 := newLatencyTracker()
	for i := 0; i < 20; i++ {
		l2.observe(time.Microsecond)
	}
	if got := l2.p95(fallback, lo, hi); got != lo {
		t.Errorf("p95 ignored the floor: %v, want %v", got, lo)
	}
}

// A draining coordinator with work still in flight must answer /readyz
// 200 with draining:true and the per-worker states — not flap to 503
// while the remaining requests are being answered. Only a drained (or
// fleet-down) coordinator is unready.
func TestReadyzReportsDrainingWithoutFlapping(t *testing.T) {
	co, err := New(Config{Workers: []string{"http://w1:1", "http://w2:2"}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	readyz := func() (int, *ReadyDoc) {
		rr := httptest.NewRecorder()
		co.handleReadyz(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var doc ReadyDoc
		if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
			t.Fatalf("undecodable readyz body %q: %v", rr.Body.String(), err)
		}
		return rr.Code, &doc
	}

	if code, doc := readyz(); code != http.StatusOK || !doc.Ready || doc.Draining {
		t.Fatalf("fresh coordinator readyz = %d %+v, want 200 ready", code, doc)
	}

	// Mid-drain with in-flight work: 200, draining flagged, workers listed.
	co.inflight.Add(1)
	co.BeginDrain()
	code, doc := readyz()
	if code != http.StatusOK {
		t.Fatalf("mid-drain readyz = %d, want 200 (no flapping while requests finish)", code)
	}
	if !doc.Draining || doc.Ready {
		t.Fatalf("mid-drain doc = %+v, want draining and not ready", doc)
	}
	if doc.InFlight != 1 || len(doc.Workers) != 2 {
		t.Fatalf("mid-drain doc carries inflight=%d workers=%d, want 1 and 2", doc.InFlight, len(doc.Workers))
	}

	// Drain complete: nothing left in flight → 503, load balancers move on.
	co.inflight.Add(-1)
	if code, doc := readyz(); code != http.StatusServiceUnavailable || doc.Ready {
		t.Fatalf("drained readyz = %d %+v, want 503 not ready", code, doc)
	}
}
