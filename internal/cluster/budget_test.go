package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"approxqo/internal/engine"
	"approxqo/internal/num"
	"approxqo/internal/server"
	"approxqo/internal/trace"
)

// refund returns exactly the withdrawn token and never mints past the
// burst cap.
func TestRetryBudgetRefundCappedAtBurst(t *testing.T) {
	b := newRetryBudget(0, 0) // defaults: ratio 0.2, burst 10
	if got := b.balance(); got != DefaultRetryBurst {
		t.Fatalf("initial balance %v, want %d", got, DefaultRetryBurst)
	}
	for i := 0; i < 3; i++ {
		if !b.withdraw() {
			t.Fatalf("withdraw %d refused with balance %v", i, b.balance())
		}
	}
	if got := b.balance(); got != DefaultRetryBurst-3 {
		t.Fatalf("balance after 3 withdrawals = %v, want %d", got, DefaultRetryBurst-3)
	}
	b.refund()
	if got := b.balance(); got != DefaultRetryBurst-2 {
		t.Fatalf("balance after refund = %v, want %d", got, DefaultRetryBurst-2)
	}
	// Refunds past the cap must not mint tokens.
	for i := 0; i < 10; i++ {
		b.refund()
	}
	if got := b.balance(); got != DefaultRetryBurst {
		t.Fatalf("balance after excess refunds = %v, want cap %d", got, DefaultRetryBurst)
	}
}

// The hedged-loser refund end to end: the primary answers while the
// hedge is still in flight, so the hedge's token bought no upstream
// work and must flow back — without the refund, every primary win
// under tail-latency hedging would permanently drain the budget
// (the double-withdraw this guards against).
func TestHedgeLoserRefundsBudgetToken(t *testing.T) {
	canned := &server.Result{
		Model: "qon", N: 2, Rung: "full",
		Report: &engine.Report{
			Model: "qon", N: 2,
			Best: &engine.BestRecord{
				Winner: "dp", Sequence: []int{1, 0},
				Cost: num.FromInt64(42), Certified: true,
			},
		},
	}
	var mu sync.Mutex
	roles := make(map[string]string) // host → primary|stall
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		role := roles[r.Host]
		mu.Unlock()
		io.Copy(io.Discard, r.Body)
		if role == "primary" {
			time.Sleep(40 * time.Millisecond) // slow enough for the hedge to fire
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(canned)
			return
		}
		// The hedge target is finitely slow: far too slow to win the race
		// (the primary answers at ~40ms), but it unblocks on its own so
		// server teardown never waits on a cancelled connection.
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	a := httptest.NewServer(handler)
	defer a.Close()
	b := httptest.NewServer(handler)
	defer b.Close()

	req := &server.Request{Workload: &server.WorkloadSpec{Shape: "chain", N: 5, Seed: 3}, TimeoutMS: 20_000}
	key := routeKey(req, nil)
	probe := NewRing(0)
	probe.Add(a.URL)
	probe.Add(b.URL)
	order := probe.Lookup(key, 2) // dispatch order: order[0] primary, order[1] hedge
	mu.Lock()
	roles[strings.TrimPrefix(order[0], "http://")] = "primary"
	mu.Unlock()

	reg := trace.NewRegistry()
	co, err := New(Config{
		Workers:       []string{a.URL, b.URL},
		ProbeInterval: -1,
		HedgeAfter:    5 * time.Millisecond,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(cts.URL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if v := reg.Counter(MetricHedgeIssued).Value(); v != 1 {
		t.Fatalf("hedge.issued = %d, want 1", v)
	}
	if v := reg.Counter(MetricHedgeWins).Value(); v != 0 {
		t.Fatalf("hedge.wins = %d, want 0 (the primary won)", v)
	}
	if v := reg.Counter(MetricRetryRefunded).Value(); v != 1 {
		t.Fatalf("retry.refunded = %d, want 1 (the losing hedge's token)", v)
	}
	if got := co.budget.balance(); got != DefaultRetryBurst {
		t.Fatalf("budget balance %v after the refund, want %d", got, DefaultRetryBurst)
	}
}
