package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"approxqo/internal/cluster/replica"
	"approxqo/internal/server"
	"approxqo/internal/trace"
)

// routeKey derives the ring key for a decoded request: the worker's
// cache key (replica.Key — model, instance size, canonical
// fingerprint), so every relabeling of one query routes to the same
// shard and the ring arcs the coordinator digests match the keys
// workers store. A request whose fingerprint cannot be resolved (an
// ungenerable workload spec) falls back to a raw body hash — still
// deterministic, no affinity guarantee.
func routeKey(req *server.Request, body []byte) string {
	fp, perm, err := req.CanonicalID()
	if err != nil || fp == "" {
		sum := sha256.Sum256(body)
		return "raw:" + hex.EncodeToString(sum[:])
	}
	return replica.Key(req.ResolvedModel(), len(perm), fp)
}

// forwardBody re-encodes the decoded request as a tagged job for the
// worker, with timeout_ms rewritten to the remaining hop budget — the
// deadline-propagation half of the routing contract.
func forwardBody(req *server.Request, remaining time.Duration) ([]byte, error) {
	job := &server.Job{
		Model:       req.Model,
		Instance:    req.Instance,
		QOHInstance: req.QOHInstance,
		Workload:    req.Workload,
		TimeoutMS:   remaining.Milliseconds(),
	}
	return json.Marshal(struct {
		Job *server.Job `json:"job"`
	}{job})
}

// upstream is the outcome of one upstream attempt. Exactly one of two
// shapes: a relayed HTTP response (status + body, already validated
// for 200s), or a retryable failure (err set — transport error,
// injected fault, undecodable/truncated body, or an hop budget that
// expired before the attempt could be issued).
type upstream struct {
	worker string
	status int
	body   []byte
	hedge  bool
	err    error
}

// terminal reports whether the outcome should be relayed to the client
// as-is: any decodable response the coordinator will not fail over
// from. 5xx statuses are upstream failures (another replica may serve
// them); everything else — 200s, 4xxs, 429s — is the worker's answer.
func (u *upstream) terminal() bool {
	return u.err == nil && u.status < 500
}

// tryWorker issues one attempt against one worker. It recomputes the
// remaining hop budget, POSTs the job, and validates the response
// (200s must decode to a certified, permutation-valid result; errors
// must decode to a structured document). Health and latency are
// observed here, exactly once per attempt.
func (c *Coordinator) tryWorker(ctx context.Context, worker, rid, key string, req *server.Request, hedge bool) *upstream {
	u := &upstream{worker: worker, hedge: hedge}
	deadline, ok := ctx.Deadline()
	remaining := time.Duration(0)
	if ok {
		remaining = time.Until(deadline) - c.cfg.HopMargin
	}
	if ok && remaining <= 0 {
		u.err = fmt.Errorf("cluster: hop budget exhausted before attempt: %w", context.DeadlineExceeded)
		return u
	}
	body, err := forwardBody(req, remaining)
	if err != nil {
		u.err = fmt.Errorf("cluster: encoding forwarded job: %w", err)
		return u
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/optimize", bytes.NewReader(body))
	if err != nil {
		u.err = err
		return u
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(server.RequestIDHeader, rid)
	if peers := c.replicaPeers(key, worker); len(peers) > 0 {
		// Name the key's ring successors so the worker can fan its
		// certified result out asynchronously after the cache store. The
		// cluster secret proves the hint came from the coordinator — the
		// worker ignores the header on unauthenticated requests.
		hreq.Header.Set(server.ReplicateToHeader, replicateToHeader(peers))
		hreq.Header.Set(replica.AuthHeader, c.cfg.ClusterSecret)
	}
	start := time.Now()
	resp, err := c.client.Do(hreq)
	if err != nil {
		u.err = err
		c.health.observe(worker, false)
		c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
		return u
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		u.err = fmt.Errorf("cluster: reading response from %s: %w", worker, err)
		c.health.observe(worker, false)
		c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
		return u
	}
	u.status, u.body = resp.StatusCode, data
	if u.status == http.StatusOK {
		if _, err := decodeWorkerResult(data); err != nil {
			// A truncated or corrupted 200 must never reach the client:
			// demote it to a retryable upstream failure.
			u.err = fmt.Errorf("cluster: invalid 200 from %s: %w", worker, err)
			c.health.observe(worker, false)
			c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
			return u
		}
		c.lat.observe(time.Since(start))
		c.health.observe(worker, true)
		c.cfg.Metrics.Histogram(MetricUpstreamWallUS).Observe(time.Since(start).Microseconds())
		return u
	}
	if _, err := decodeWorkerError(data); err != nil {
		u.err = fmt.Errorf("cluster: unstructured %d from %s: %w", u.status, worker, err)
		c.health.observe(worker, false)
		c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
		return u
	}
	// A structured non-200: the worker is alive and answering. Only 5xx
	// counts against its health (overload and client errors are not
	// worker faults).
	c.health.observe(worker, u.status < 500)
	if u.status >= 500 {
		c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
	}
	return u
}

// decodeWorkerResult validates one worker 200 body: it must decode to
// a Result carrying a certified winning plan whose sequence is a
// permutation of the instance's relations. This is the coordinator's
// re-statement of the serving layer's core promise — a corrupted or
// truncated body fails here and becomes a retryable upstream error
// instead of reaching a client.
func decodeWorkerResult(data []byte) (*server.Result, error) {
	var res server.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("undecodable result document: %w", err)
	}
	if err := validateResult(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// validateResult applies the coordinator's certification checks to one
// decoded result (shared by the single and batch decoders).
func validateResult(res *server.Result) error {
	if res.Report == nil || res.Report.Best == nil {
		return errors.New("result document has no winning plan")
	}
	best := res.Report.Best
	if !best.Certified {
		return fmt.Errorf("winner %q is not certified", best.Winner)
	}
	if !best.Cost.IsValid() {
		return fmt.Errorf("winner %q carries no plan cost", best.Winner)
	}
	if res.N < 0 || res.N > 1<<20 {
		return fmt.Errorf("implausible instance size %d", res.N)
	}
	if len(best.Sequence) != res.N {
		return fmt.Errorf("winning sequence has %d relations, instance has %d", len(best.Sequence), res.N)
	}
	seen := make([]bool, res.N)
	for _, r := range best.Sequence {
		if r < 0 || r >= res.N || seen[r] {
			return fmt.Errorf("winning sequence %v is not a permutation", best.Sequence)
		}
		seen[r] = true
	}
	return nil
}

// decodeWorkerError validates one worker non-200 body: it must be a
// structured error document with a non-empty kind.
func decodeWorkerError(data []byte) (*server.ErrorDoc, error) {
	var doc server.ErrorDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("undecodable error document: %w", err)
	}
	if doc.Error.Kind == "" {
		return nil, errors.New("error document without a kind")
	}
	return &doc, nil
}

// dispatch routes one decoded request: primary attempt (with a hedge
// race once the hedge delay fires), then budgeted failover retries
// down the replica preference list. It returns the outcome to relay,
// which may still be a retryable failure when every avenue is
// exhausted — the caller renders that as a 502 upstream document.
func (c *Coordinator) dispatch(ctx context.Context, span *trace.Span, rid string, req *server.Request, key string) *upstream {
	prefs := c.routeOrder(key)
	if len(prefs) == 0 {
		return &upstream{err: errors.New("cluster: no workers in the ring")}
	}
	next := 0
	nextWorker := func() string {
		w := prefs[next%len(prefs)]
		next++
		return w
	}
	m := c.cfg.Metrics
	res := c.attemptHedged(ctx, rid, key, req, nextWorker)
	attempts := 1
	for retry := 0; !res.terminal() && retry < c.cfg.MaxRetries; retry++ {
		if ctx.Err() != nil {
			break
		}
		if !c.budget.withdraw() {
			m.Counter(MetricRetryDenied).Inc()
			break
		}
		if err := sleepCtx(ctx, c.backoff(retry)); err != nil {
			break
		}
		m.Counter(MetricRetries).Inc()
		m.Counter(MetricAttempts).Inc()
		res = c.tryWorker(ctx, nextWorker(), rid, key, req, false)
		attempts++
	}
	span.SetField("worker", res.worker)
	span.SetField("attempts", attempts)
	return res
}

// routeOrder is the ring's preference list for key, stably partitioned
// so routable workers come before down ones — a fully down fleet still
// gets half-open trials rather than instant failure.
func (c *Coordinator) routeOrder(key string) []string {
	all := c.ring.Lookup(key, 0)
	routable := make([]string, 0, len(all))
	var down []string
	for _, w := range all {
		if c.health.routable(w) {
			routable = append(routable, w)
		} else {
			down = append(down, w)
		}
	}
	return append(routable, down...)
}

// attemptHedged runs the primary attempt with tail-latency hedging:
// when the hedge delay lapses before the primary answers, a duplicate
// goes to the next replica (budget permitting) and the first terminal
// answer wins; the loser's context is cancelled. Safe because every
// relayed 200 is a certified result for the same canonical instance —
// the two answers are interchangeable.
func (c *Coordinator) attemptHedged(ctx context.Context, rid, key string, req *server.Request, nextWorker func() string) *upstream {
	m := c.cfg.Metrics
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan *upstream, 2)
	m.Counter(MetricAttempts).Inc()
	primary := nextWorker()
	go func() { ch <- c.tryWorker(actx, primary, rid, key, req, false) }()

	delay := c.hedgeDelay()
	if delay < 0 || c.ring.Size() < 2 {
		return <-ch
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	pending := 1
	hedging := 0 // hedges in flight (issued, no outcome yet)
	var firstFail *upstream
	for {
		select {
		case res := <-ch:
			pending--
			if res.hedge {
				hedging--
			}
			if res.terminal() {
				if res.hedge {
					m.Counter(MetricHedgeWins).Inc()
				} else if hedging > 0 {
					// The primary won with a hedge still in flight: the
					// loser is about to be cancelled without completing any
					// upstream work, so the token it withdrew bought
					// nothing — refund it. (A hedge that already failed
					// spent real worker capacity and stays charged.)
					c.budget.refund()
					m.Counter(MetricRetryRefunded).Inc()
				}
				return res
			}
			if firstFail == nil {
				firstFail = res
			}
			if pending == 0 {
				return firstFail
			}
		case <-timer.C:
			// The primary has outlived the tail threshold: issue the
			// hedge, if the shared budget allows one.
			if !c.budget.withdraw() {
				m.Counter(MetricRetryDenied).Inc()
				continue
			}
			m.Counter(MetricHedgeIssued).Inc()
			m.Counter(MetricAttempts).Inc()
			pending++
			hedging++
			hedge := nextWorker()
			go func() { ch <- c.tryWorker(actx, hedge, rid, key, req, true) }()
		case <-ctx.Done():
			return &upstream{err: ctx.Err()}
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleOptimize is the coordinator's POST /optimize: decode, resolve
// the ring key and budget, dispatch with hedging and budgeted
// failover, relay the worker's answer (or render a coordinator-origin
// error document when the fleet could not serve it).
func (c *Coordinator) handleOptimize(w http.ResponseWriter, r *http.Request) {
	m := c.cfg.Metrics
	m.Counter(MetricRequests).Inc()
	span := c.cfg.Tracer.Start(SpanRequest)
	defer span.End()
	rid := r.Header.Get(server.RequestIDHeader)
	if rid == "" {
		rid = c.nextRequestID()
	}
	w.Header().Set(server.RequestIDHeader, rid)
	span.SetField("request_id", rid)
	if r.Method != http.MethodPost {
		span.SetField("kind", "method_not_allowed")
		writeErrorDoc(w, rid, http.StatusMethodNotAllowed, "method_not_allowed",
			"use POST with a JSON request body", 0)
		return
	}
	c.inflight.Add(1)
	m.Gauge(MetricInFlight).Add(1)
	defer func() {
		c.inflight.Add(-1)
		m.Gauge(MetricInFlight).Add(-1)
	}()
	c.budget.deposit()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		span.SetField("kind", "too_large")
		writeErrorDoc(w, rid, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds %d bytes", c.cfg.MaxBodyBytes), 0)
		return
	}
	req, err := server.DecodeRequest(body)
	if err != nil {
		span.SetField("kind", "bad_request")
		writeErrorDoc(w, rid, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	key := routeKey(req, body)
	span.SetField("key", key)

	ctx, cancel := context.WithTimeout(r.Context(), req.ResolveBudget(c.cfg.DefaultTimeout, c.cfg.MaxTimeout))
	defer cancel()

	res := c.dispatch(ctx, span, rid, req, key)
	if res.err != nil {
		status, kind := http.StatusBadGateway, "upstream"
		if errors.Is(res.err, context.DeadlineExceeded) || ctx.Err() != nil {
			status, kind = http.StatusGatewayTimeout, "deadline"
		}
		span.SetField("kind", kind)
		writeErrorDoc(w, rid, status, kind,
			fmt.Sprintf("upstream attempts exhausted: %v", res.err), c.cfg.RetryAfter)
		return
	}
	span.SetField("status", res.status)
	relay(w, res.status, res.body)
}

// relay writes an upstream response body through unchanged.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErrorDoc renders a coordinator-origin structured error document
// in the serving layer's shape, so clients (loadgen included) handle
// coordinator and worker failures identically.
func writeErrorDoc(w http.ResponseWriter, rid string, status int, kind, msg string, retryAfter time.Duration) {
	var doc server.ErrorDoc
	doc.Error.Kind = kind
	doc.Error.Message = msg
	doc.Error.RequestID = rid
	if retryAfter > 0 {
		doc.Error.RetryAfterMS = retryAfter.Milliseconds()
		w.Header().Set("Retry-After", strconv.FormatInt(int64((retryAfter+time.Second-1)/time.Second), 10))
	}
	writeJSON(w, status, &doc)
}
