package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"approxqo/internal/cluster/replica"
	"approxqo/internal/server"
)

// POST /optimize/batch at the coordinator: the batch is split by
// canonical instance shape, each shape group routed to its own ring
// shard as one worker sub-batch, and the per-job results reassembled
// in job order. Affinity is per shape, not per batch — two batches
// carrying relabelings of the same query hit the same worker and dedup
// through its canonical cache. Sub-batches fail over to the next
// replica under the same retry budget as single requests; hedging is
// deliberately not applied (a duplicated sub-batch multiplies whole
// engine-run groups, not one tail request — the premium is not worth
// the tail).

// clusterGroup is one shape group of a coordinator batch: the jobs
// (by original index) that share one ring key.
type clusterGroup struct {
	key  string
	idxs []int
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	m := c.cfg.Metrics
	m.Counter(MetricBatchRequests).Inc()
	span := c.cfg.Tracer.Start(SpanBatch)
	defer span.End()
	rid := r.Header.Get(server.RequestIDHeader)
	if rid == "" {
		rid = c.nextRequestID()
	}
	w.Header().Set(server.RequestIDHeader, rid)
	span.SetField("request_id", rid)
	if r.Method != http.MethodPost {
		span.SetField("kind", "method_not_allowed")
		writeErrorDoc(w, rid, http.StatusMethodNotAllowed, "method_not_allowed",
			"use POST with a JSON request body", 0)
		return
	}
	c.inflight.Add(1)
	m.Gauge(MetricInFlight).Add(1)
	defer func() {
		c.inflight.Add(-1)
		m.Gauge(MetricInFlight).Add(-1)
	}()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		span.SetField("kind", "too_large")
		writeErrorDoc(w, rid, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds %d bytes", c.cfg.MaxBodyBytes), 0)
		return
	}
	br, err := server.DecodeBatchRequest(body, c.cfg.MaxBatchJobs)
	if err != nil {
		span.SetField("kind", "bad_request")
		writeErrorDoc(w, rid, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	n := len(br.Jobs)
	m.Counter(MetricBatchJobs).Add(int64(n))
	span.SetField("jobs", n)

	// Validate locally and group by ring key. Invalid jobs get their
	// error document here — no upstream round trip for a job no worker
	// would accept. Jobs whose fingerprint cannot resolve form singleton
	// groups on a synthetic key: still routed deterministically, no
	// cross-batch affinity claim.
	reqs := make([]*server.Request, n)
	results := make([]*server.Result, n)
	errDocs := make([]*server.ErrorBody, n)
	groupOf := make(map[string]int)
	var groups []*clusterGroup
	for i, job := range br.Jobs {
		req := &server.Request{
			Model:       job.Model,
			Instance:    job.Instance,
			QOHInstance: job.QOHInstance,
			Workload:    job.Workload,
			TimeoutMS:   job.TimeoutMS,
		}
		if err := req.Validate(); err != nil {
			errDocs[i] = &server.ErrorBody{Kind: "bad_request", Message: err.Error(), RequestID: rid}
			continue
		}
		reqs[i] = req
		key := ""
		if fp, perm, err := req.CanonicalID(); err == nil && fp != "" {
			key = replica.Key(req.ResolvedModel(), len(perm), fp)
		}
		if key == "" {
			key = fmt.Sprintf("\x00job\x00%d", i)
		}
		if gi, ok := groupOf[key]; ok {
			groups[gi].idxs = append(groups[gi].idxs, i)
			continue
		}
		groupOf[key] = len(groups)
		groups = append(groups, &clusterGroup{key: key, idxs: []int{i}})
	}
	span.SetField("shapes", len(groups))

	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *clusterGroup) {
			defer wg.Done()
			c.dispatchGroup(r.Context(), rid, g, reqs, results, errDocs)
		}(g)
	}
	wg.Wait()

	doc := &server.BatchResponse{Jobs: n, Shapes: len(groups), Results: make([]server.BatchJobResult, n)}
	for i := range doc.Results {
		doc.Results[i] = server.BatchJobResult{Index: i, Result: results[i], Error: errDocs[i]}
	}
	span.SetField("status", http.StatusOK)
	writeJSON(w, http.StatusOK, doc)
}

// dispatchGroup routes one shape group as a worker sub-batch, failing
// over down the group key's replica list under the shared retry
// budget. Outcomes land per-job in results/errDocs at the group's
// original indices.
func (c *Coordinator) dispatchGroup(ctx context.Context, rid string, g *clusterGroup, reqs []*server.Request, results []*server.Result, errDocs []*server.ErrorBody) {
	m := c.cfg.Metrics
	m.Counter(MetricBatchShapes).Inc()
	c.budget.deposit()

	// The group's budget is the largest member budget, mirroring the
	// worker's own batch policy.
	budget := reqs[g.idxs[0]].ResolveBudget(c.cfg.DefaultTimeout, c.cfg.MaxTimeout)
	for _, i := range g.idxs[1:] {
		if b := reqs[i].ResolveBudget(c.cfg.DefaultTimeout, c.cfg.MaxTimeout); b > budget {
			budget = b
		}
	}
	gctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	prefs := c.routeOrder(g.key)
	if len(prefs) == 0 {
		c.failGroup(g, errDocs, rid, "no_workers", "cluster has no workers in the ring")
		return
	}
	m.Counter(MetricAttempts).Inc()
	res := c.tryWorkerBatch(gctx, prefs[0], rid, g, reqs)
	for retry := 0; !res.terminal() && retry < c.cfg.MaxRetries; retry++ {
		if gctx.Err() != nil {
			break
		}
		if !c.budget.withdraw() {
			m.Counter(MetricRetryDenied).Inc()
			break
		}
		if err := sleepCtx(gctx, c.backoff(retry)); err != nil {
			break
		}
		m.Counter(MetricRetries).Inc()
		m.Counter(MetricAttempts).Inc()
		res = c.tryWorkerBatch(gctx, prefs[(retry+1)%len(prefs)], rid, g, reqs)
	}
	if !res.terminal() {
		kind, msg := "upstream", fmt.Sprintf("upstream attempts exhausted: %v", res.err)
		if errors.Is(res.err, context.DeadlineExceeded) || gctx.Err() != nil {
			kind, msg = "deadline", "budget exhausted before a worker answered"
		}
		c.failGroup(g, errDocs, rid, kind, msg)
		return
	}
	if res.status != http.StatusOK {
		// A structured worker refusal (429 overloaded, 503 draining, …):
		// relay its document to every member.
		doc, _ := decodeWorkerError(res.body)
		for _, i := range g.idxs {
			eb := doc.Error
			eb.RequestID = rid
			errDocs[i] = &eb
		}
		return
	}
	sub, _ := decodeWorkerBatch(res.body, len(g.idxs))
	for k, i := range g.idxs {
		jr := sub.Results[k]
		if jr.Error != nil {
			eb := *jr.Error
			eb.RequestID = rid
			errDocs[i] = &eb
			continue
		}
		results[i] = jr.Result
	}
}

// failGroup writes one coordinator-origin error document to every
// member of a group.
func (c *Coordinator) failGroup(g *clusterGroup, errDocs []*server.ErrorBody, rid, kind, msg string) {
	for _, i := range g.idxs {
		errDocs[i] = &server.ErrorBody{
			Kind: kind, Message: msg,
			RetryAfterMS: c.cfg.RetryAfter.Milliseconds(),
			RequestID:    rid,
		}
	}
}

// tryWorkerBatch issues one sub-batch attempt against one worker. The
// response is validated like a single result: a 200 must decode to a
// batch document with one entry per job, each entry either a
// certified, permutation-valid result or a structured error.
func (c *Coordinator) tryWorkerBatch(ctx context.Context, worker, rid string, g *clusterGroup, reqs []*server.Request) *upstream {
	u := &upstream{worker: worker}
	deadline, ok := ctx.Deadline()
	remaining := time.Duration(0)
	if ok {
		remaining = time.Until(deadline) - c.cfg.HopMargin
	}
	if ok && remaining <= 0 {
		u.err = fmt.Errorf("cluster: hop budget exhausted before attempt: %w", context.DeadlineExceeded)
		return u
	}
	sub := &server.BatchRequest{Jobs: make([]*server.Job, len(g.idxs))}
	for k, i := range g.idxs {
		req := reqs[i]
		sub.Jobs[k] = &server.Job{
			Model:       req.Model,
			Instance:    req.Instance,
			QOHInstance: req.QOHInstance,
			Workload:    req.Workload,
			TimeoutMS:   remaining.Milliseconds(),
		}
	}
	body, err := json.Marshal(sub)
	if err != nil {
		u.err = fmt.Errorf("cluster: encoding sub-batch: %w", err)
		return u
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/optimize/batch", bytes.NewReader(body))
	if err != nil {
		u.err = err
		return u
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(server.RequestIDHeader, rid)
	if peers := c.replicaPeers(g.key, worker); len(peers) > 0 {
		// One shape per sub-batch means one replica set for the whole
		// group; the worker fans out each stored leader result. The
		// secret authenticates the hint (unauthenticated ones are
		// ignored).
		hreq.Header.Set(server.ReplicateToHeader, replicateToHeader(peers))
		hreq.Header.Set(replica.AuthHeader, c.cfg.ClusterSecret)
	}
	start := time.Now()
	resp, err := c.client.Do(hreq)
	if err != nil {
		u.err = err
		c.health.observe(worker, false)
		c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
		return u
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		u.err = fmt.Errorf("cluster: reading response from %s: %w", worker, err)
		c.health.observe(worker, false)
		c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
		return u
	}
	u.status, u.body = resp.StatusCode, data
	if u.status == http.StatusOK {
		if _, err := decodeWorkerBatch(data, len(g.idxs)); err != nil {
			u.err = fmt.Errorf("cluster: invalid batch 200 from %s: %w", worker, err)
			c.health.observe(worker, false)
			c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
			return u
		}
		c.lat.observe(time.Since(start))
		c.health.observe(worker, true)
		c.cfg.Metrics.Histogram(MetricUpstreamWallUS).Observe(time.Since(start).Microseconds())
		return u
	}
	if _, err := decodeWorkerError(data); err != nil {
		u.err = fmt.Errorf("cluster: unstructured %d from %s: %w", u.status, worker, err)
		c.health.observe(worker, false)
		c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
		return u
	}
	c.health.observe(worker, u.status < 500)
	if u.status >= 500 {
		c.cfg.Metrics.Counter(MetricUpstreamErrors).Inc()
	}
	return u
}

// decodeWorkerBatch validates one worker batch 200 body: a batch
// document with exactly wantJobs entries, each carrying either a
// structured error or a result that passes the same certification and
// permutation checks as a single /optimize response.
func decodeWorkerBatch(data []byte, wantJobs int) (*server.BatchResponse, error) {
	var doc server.BatchResponse
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("undecodable batch document: %w", err)
	}
	if len(doc.Results) != wantJobs {
		return nil, fmt.Errorf("batch document has %d results, want %d", len(doc.Results), wantJobs)
	}
	for k, jr := range doc.Results {
		switch {
		case jr.Result != nil && jr.Error != nil:
			return nil, fmt.Errorf("job %d carries both a result and an error", k)
		case jr.Error != nil:
			if jr.Error.Kind == "" {
				return nil, fmt.Errorf("job %d error document without a kind", k)
			}
		case jr.Result != nil:
			if err := validateResult(jr.Result); err != nil {
				return nil, fmt.Errorf("job %d: %w", k, err)
			}
		default:
			return nil, fmt.Errorf("job %d carries neither a result nor an error", k)
		}
	}
	return &doc, nil
}
