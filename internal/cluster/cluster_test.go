// Coordinator integration tests: real qod workers behind httptest, a
// real coordinator in front, deterministic network faults in between.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/cluster"
	"approxqo/internal/qon"
	"approxqo/internal/server"
	"approxqo/internal/server/loadgen"
	"approxqo/internal/trace"
	"approxqo/internal/workload"
)

// worker is one live qod worker: the serving layer plus its test
// listener.
type worker struct {
	srv *server.Server
	ts  *httptest.Server
}

func (w *worker) host() string { return strings.TrimPrefix(w.ts.URL, "http://") }

func newWorker(t *testing.T, seed int64) *worker {
	t.Helper()
	s, err := server.New(server.Config{
		MaxConcurrent:  4,
		QueueDepth:     64,
		DegradeAt:      64,
		DefaultTimeout: 10 * time.Second,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &worker{srv: s, ts: ts}
}

func newFleet(t *testing.T, n int) []*worker {
	t.Helper()
	out := make([]*worker, n)
	for i := range out {
		out[i] = newWorker(t, int64(100+i))
	}
	return out
}

func fleetURLs(ws []*worker) []string {
	urls := make([]string, len(ws))
	for i, w := range ws {
		urls[i] = w.ts.URL
	}
	return urls
}

func fleetRuns(ws []*worker) int64 {
	var runs int64
	for _, w := range ws {
		runs += w.srv.Engine().Health().Runs
	}
	return runs
}

// checkCertified asserts the serving contract on one relayed 200: a
// certified winner whose sequence is a valid permutation.
func checkCertified(res *server.Result) error {
	if res == nil || res.Report == nil || res.Report.Best == nil {
		return fmt.Errorf("200 without a winning plan")
	}
	best := res.Report.Best
	if !best.Certified {
		return fmt.Errorf("uncertified winner %q served as 200", best.Winner)
	}
	if got := len(best.Sequence); got != res.N {
		return fmt.Errorf("winning sequence has %d relations, instance has %d", got, res.N)
	}
	seen := make([]bool, res.N)
	for _, r := range best.Sequence {
		if r < 0 || r >= res.N || seen[r] {
			return fmt.Errorf("winning sequence %v is not a permutation", best.Sequence)
		}
		seen[r] = true
	}
	return nil
}

func workloadReq(seed int64, n int) *server.Request {
	return &server.Request{
		Workload:  &server.WorkloadSpec{Shape: "chain", N: n, Seed: seed, EdgeProb: 0.5},
		TimeoutMS: 20_000,
	}
}

func TestCoordinatorRelaysCertifiedResult(t *testing.T) {
	fleet := newFleet(t, 2)
	co, err := cluster.New(cluster.Config{
		Workers:       fleetURLs(fleet),
		ProbeInterval: -1,
		HedgeAfter:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	c := loadgen.New(cts.URL, 1)
	for i := 0; i < 4; i++ {
		out, err := c.Optimize(context.Background(), workloadReq(int64(i), 5))
		if err != nil {
			t.Fatal(err)
		}
		if !out.OK() {
			t.Fatalf("request %d: status %d (%+v)", i, out.Status, out.ErrDoc)
		}
		if err := checkCertified(out.Result); err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(cts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestCoordinatorAffinityDedupsRelabelings is the routing contract:
// every relabeling of one instance carries the same canonical
// fingerprint, routes to the same shard, and dedups through that
// worker's cache — one engine run fleet-wide, no matter how many
// label spaces the query arrives in.
func TestCoordinatorAffinityDedupsRelabelings(t *testing.T) {
	fleet := newFleet(t, 4)
	co, err := cluster.New(cluster.Config{
		Workers:       fleetURLs(fleet),
		ProbeInterval: -1,
		HedgeAfter:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	base, err := workload.Generate(workload.Params{N: 6, Shape: workload.Star, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	c := loadgen.New(cts.URL, 2)

	first, err := c.Optimize(context.Background(), &server.Request{Instance: base, TimeoutMS: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if !first.OK() {
		t.Fatalf("base request: status %d (%+v)", first.Status, first.ErrDoc)
	}
	if err := checkCertified(first.Result); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		dup, err := c.Optimize(context.Background(), &server.Request{
			Instance:  qon.Relabel(base, rng.Perm(6)),
			TimeoutMS: 20_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !dup.OK() {
			t.Fatalf("relabeling %d: status %d (%+v)", i, dup.Status, dup.ErrDoc)
		}
		if err := checkCertified(dup.Result); err != nil {
			t.Errorf("relabeling %d: %v", i, err)
		}
		if !dup.Result.Cached {
			t.Errorf("relabeling %d missed the cache: routed off-shard", i)
		}
		if dup.Result.Fingerprint != first.Result.Fingerprint {
			t.Errorf("relabeling %d fingerprint %q != base %q", i, dup.Result.Fingerprint, first.Result.Fingerprint)
		}
	}
	if runs := fleetRuns(fleet); runs != 1 {
		t.Errorf("fleet ran the engine %d times for 7 relabelings of one instance, want 1", runs)
	}
}

// TestCoordinatorFailover proves bounded failover under two fault
// shapes against worker A: synthesized 502s (never delivered) and
// connection resets (delivered, response lost). Every client request
// must still come back a certified 200 via worker B.
func TestCoordinatorFailover(t *testing.T) {
	for _, fault := range []chaos.NetFault{chaos.Net5xx, chaos.NetReset} {
		t.Run(string(fault), func(t *testing.T) {
			fleet := newFleet(t, 2)
			reg := trace.NewRegistry()
			co, err := cluster.New(cluster.Config{
				Workers:       fleetURLs(fleet),
				Transport:     chaos.NewTransport(nil, []chaos.NetRule{{Fault: fault, Target: fleet[0].host()}}),
				ProbeInterval: -1,
				HedgeAfter:    -1,
				BaseBackoff:   time.Millisecond,
				MaxBackoff:    4 * time.Millisecond,
				Metrics:       reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			cts := httptest.NewServer(co.Handler())
			defer cts.Close()

			c := loadgen.New(cts.URL, 3)
			const requests = 16
			for i := 0; i < requests; i++ {
				out, err := c.Optimize(context.Background(), workloadReq(int64(40+i), 5))
				if err != nil {
					t.Fatal(err)
				}
				if !out.OK() {
					t.Fatalf("request %d: status %d (%+v) — failover failed", i, out.Status, out.ErrDoc)
				}
				if err := checkCertified(out.Result); err != nil {
					t.Errorf("request %d: %v", i, err)
				}
			}
			if fault == chaos.Net5xx {
				if runs := fleet[0].srv.Engine().Health().Runs; runs != 0 {
					t.Errorf("5xx-faulted worker still ran the engine %d times", runs)
				}
			}
			attempts := reg.Counter(cluster.MetricAttempts).Value()
			if attempts < requests {
				t.Errorf("attempts=%d < requests=%d", attempts, requests)
			}
			// The failure budget bounds amplification even with every
			// A-routed request failing over.
			ratioShare := cluster.DefaultRetryRatio * float64(requests)
			maxAttempts := int64(requests) + int64(cluster.DefaultRetryBurst) + int64(ratioShare) + 1
			if attempts > maxAttempts {
				t.Errorf("attempts=%d exceeds the budget bound %d", attempts, maxAttempts)
			}
		})
	}
}

// TestCoordinatorHedgeWinsWithoutDuplicateRun holds exactly one
// upstream request in the network (chaos delay, single-failure budget)
// and asserts the hedge answers: first certified result wins, the held
// primary is cancelled before delivery, and the fleet runs the engine
// exactly once — a hedge must never double-charge admission or the
// engine.
func TestCoordinatorHedgeWinsWithoutDuplicateRun(t *testing.T) {
	fleet := newFleet(t, 2)
	reg := trace.NewRegistry()
	co, err := cluster.New(cluster.Config{
		Workers: fleetURLs(fleet),
		Transport: chaos.NewTransport(nil,
			[]chaos.NetRule{{Fault: chaos.NetDelay}},
			chaos.WithNetDelay(30*time.Second), chaos.WithNetFailures(1)),
		ProbeInterval: -1,
		HedgeAfter:    10 * time.Millisecond,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	c := loadgen.New(cts.URL, 4)
	start := time.Now()
	out, err := c.Optimize(context.Background(), workloadReq(99, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("status %d (%+v)", out.Status, out.ErrDoc)
	}
	if err := checkCertified(out.Result); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("answer took %v: the hedge did not rescue the held primary", elapsed)
	}
	if v := reg.Counter(cluster.MetricHedgeIssued).Value(); v != 1 {
		t.Errorf("hedge.issued = %d, want 1", v)
	}
	if v := reg.Counter(cluster.MetricHedgeWins).Value(); v != 1 {
		t.Errorf("hedge.wins = %d, want 1", v)
	}
	if v := reg.Counter(cluster.MetricAttempts).Value(); v != 2 {
		t.Errorf("attempts = %d, want 2 (primary + hedge)", v)
	}
	if runs := fleetRuns(fleet); runs != 1 {
		t.Errorf("fleet ran the engine %d times for one hedged request, want 1 (held primary must be cancelled)", runs)
	}
}

// TestCoordinatorDeadlinePropagation uses a capturing fake worker to
// observe exactly what crosses the hop: the forwarded timeout_ms must
// be the client's budget minus the hop margin (never more), and the
// client's X-Request-ID must arrive intact.
func TestCoordinatorDeadlinePropagation(t *testing.T) {
	type seen struct {
		timeoutMS int64
		rid       string
	}
	seenC := make(chan seen, 1)
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		var body struct {
			Job struct {
				TimeoutMS int64 `json:"timeout_ms"`
			} `json:"job"`
		}
		json.Unmarshal(data, &body)
		seenC <- seen{timeoutMS: body.Job.TimeoutMS, rid: r.Header.Get(server.RequestIDHeader)}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"kind":"bad_request","message":"capturing fake"}}`))
	}))
	defer fake.Close()

	co, err := cluster.New(cluster.Config{
		Workers:       []string{fake.URL},
		ProbeInterval: -1,
		HedgeAfter:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	c := loadgen.New(cts.URL, 5)
	c.Retries = 0
	req := workloadReq(1, 5)
	req.TimeoutMS = 300
	out, err := c.Optimize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusBadRequest || out.ErrDoc == nil || out.ErrDoc.Error.Kind != "bad_request" {
		t.Fatalf("worker's terminal 400 was not relayed: status %d (%+v)", out.Status, out.ErrDoc)
	}
	got := <-seenC
	if got.timeoutMS <= 0 || got.timeoutMS > 295 {
		t.Errorf("forwarded timeout_ms = %d, want in (0, 295] (300ms budget minus the hop margin)", got.timeoutMS)
	}
	if got.rid == "" || got.rid != out.RequestID {
		t.Errorf("worker saw X-Request-ID %q, client sent %q", got.rid, out.RequestID)
	}
}

// TestCoordinatorErrorDocCarriesRequestID covers the coordinator's own
// error documents: a client-supplied ID is echoed in the body and the
// response header; without one the coordinator mints an ID.
func TestCoordinatorErrorDocCarriesRequestID(t *testing.T) {
	fleet := newFleet(t, 1)
	co, err := cluster.New(cluster.Config{Workers: fleetURLs(fleet), ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	hreq, _ := http.NewRequest(http.MethodPost, cts.URL+"/optimize", bytes.NewReader([]byte("{not json")))
	hreq.Header.Set(server.RequestIDHeader, "client-abc-1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(server.RequestIDHeader); got != "client-abc-1" {
		t.Errorf("response header X-Request-ID = %q, want the client's", got)
	}
	var doc server.ErrorDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Error.RequestID != "client-abc-1" {
		t.Errorf("error doc request_id = %q, want the client's", doc.Error.RequestID)
	}

	resp2, err := http.Post(cts.URL+"/optimize", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var doc2 server.ErrorDoc
	if err := json.NewDecoder(resp2.Body).Decode(&doc2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(doc2.Error.RequestID, "co-") {
		t.Errorf("coordinator minted request_id %q, want a co- prefixed ID", doc2.Error.RequestID)
	}
}

// TestCoordinatorBatchFanout splits a planted batch across the fleet
// and reassembles it: duplicates dedup within their shape group, an
// invalid job gets its own error document without failing the batch,
// and the fleet's engine-run total is bounded by the distinct shapes.
func TestCoordinatorBatchFanout(t *testing.T) {
	fleet := newFleet(t, 3)
	co, err := cluster.New(cluster.Config{
		Workers:       fleetURLs(fleet),
		ProbeInterval: -1,
		HedgeAfter:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	jobs, distinct, err := loadgen.PlantedBatch(21, 12)
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, &server.Job{}) // invalid: no instance source
	c := loadgen.New(cts.URL, 6)
	out, err := c.OptimizeBatch(context.Background(), &server.BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("batch status %d (%+v)", out.Status, out.ErrDoc)
	}
	br := out.Response
	if br.Jobs != 13 {
		t.Errorf("jobs = %d, want 13", br.Jobs)
	}
	if br.Shapes != distinct {
		t.Errorf("shapes = %d, want %d (duplicates must collapse, the invalid job must not group)", br.Shapes, distinct)
	}
	for j, item := range br.Results[:12] {
		if item.Error != nil {
			t.Errorf("job %d: %+v", j, item.Error)
			continue
		}
		if err := checkCertified(item.Result); err != nil {
			t.Errorf("job %d: %v", j, err)
		}
	}
	last := br.Results[12]
	if last.Error == nil || last.Error.Kind != "bad_request" {
		t.Errorf("invalid job got %+v, want a bad_request document", last.Error)
	} else if last.Error.RequestID != out.RequestID {
		t.Errorf("invalid job's request_id = %q, want %q", last.Error.RequestID, out.RequestID)
	}
	if runs := fleetRuns(fleet); runs > int64(distinct) {
		t.Errorf("fleet ran the engine %d times for %d distinct shapes", runs, distinct)
	}
}

// TestCoordinatorBatchFailover kills every sub-batch's first try at
// worker A with synthesized 502s; every job must still come back
// certified through worker B.
func TestCoordinatorBatchFailover(t *testing.T) {
	fleet := newFleet(t, 2)
	co, err := cluster.New(cluster.Config{
		Workers:       fleetURLs(fleet),
		Transport:     chaos.NewTransport(nil, []chaos.NetRule{{Fault: chaos.Net5xx, Target: fleet[0].host()}}),
		ProbeInterval: -1,
		HedgeAfter:    -1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	jobs, _, err := loadgen.PlantedBatch(33, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := loadgen.New(cts.URL, 7)
	out, err := c.OptimizeBatch(context.Background(), &server.BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("batch status %d (%+v)", out.Status, out.ErrDoc)
	}
	for j, item := range out.Response.Results {
		if item.Error != nil {
			t.Errorf("job %d: %+v — sub-batch failover failed", j, item.Error)
			continue
		}
		if err := checkCertified(item.Result); err != nil {
			t.Errorf("job %d: %v", j, err)
		}
	}
}

// TestCoordinatorProbesDriveHealth watches the health state machine
// through the coordinator's /readyz: a transient outage (three dropped
// probes) marks worker A down, the fleet stays ready on worker B, and
// the half-open probe after the cooldown brings A back.
func TestCoordinatorProbesDriveHealth(t *testing.T) {
	fleet := newFleet(t, 2)
	reg := trace.NewRegistry()
	co, err := cluster.New(cluster.Config{
		Workers: fleetURLs(fleet),
		Transport: chaos.NewTransport(nil,
			[]chaos.NetRule{{Fault: chaos.NetDrop, Target: fleet[0].host()}},
			chaos.WithNetFailures(3)),
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  100 * time.Millisecond,
		DownCooldown:  30 * time.Millisecond,
		HedgeAfter:    -1,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	co.StartProbes(ctx)
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	stateOf := func(worker string) (state string, ready bool) {
		resp, err := http.Get(cts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc cluster.ReadyDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		for _, ws := range doc.Workers {
			if ws.Worker == worker {
				return ws.State, doc.Ready
			}
		}
		t.Fatalf("worker %s missing from readyz", worker)
		return "", false
	}
	waitFor := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			state, ready := stateOf(fleet[0].ts.URL)
			if !ready {
				t.Fatal("fleet reported not ready while worker B is healthy")
			}
			if state == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker A never reached %q (stuck at %q)", want, state)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("down")
	if v := reg.Counter(cluster.MetricWorkerDown).Value(); v < 1 {
		t.Errorf("worker.down = %d, want ≥ 1", v)
	}
	// The fault budget is spent: the half-open probe after the cooldown
	// succeeds and closes the circuit.
	waitFor("healthy")
}

// TestCoordinatorAllWorkersDown exhausts a single-worker fleet: the
// optimize path returns a structured 502 upstream document and /readyz
// flips to 503.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	fleet := newFleet(t, 1)
	co, err := cluster.New(cluster.Config{
		Workers:       fleetURLs(fleet),
		Transport:     chaos.NewTransport(nil, []chaos.NetRule{{Fault: chaos.NetDrop}}),
		ProbeInterval: -1,
		HedgeAfter:    -1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	defer cts.Close()

	c := loadgen.New(cts.URL, 8)
	c.Retries = 0 // the coordinator's 502 is retryable to loadgen; observe the first one
	out, err := c.Optimize(context.Background(), workloadReq(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", out.Status)
	}
	if out.ErrDoc == nil || out.ErrDoc.Error.Kind != "upstream" {
		t.Fatalf("502 without an upstream error document: %+v", out.ErrDoc)
	}
	if out.ErrDoc.Error.RequestID != out.RequestID {
		t.Errorf("502 request_id = %q, want %q", out.ErrDoc.Error.RequestID, out.RequestID)
	}
	if out.ErrDoc.Error.RetryAfterMS <= 0 {
		t.Error("coordinator 502 without a retry_after_ms hint")
	}

	// Three in-band failures have marked the worker down.
	resp, err := http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d with every worker down, want 503", resp.StatusCode)
	}
}
