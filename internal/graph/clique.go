package graph

// Exact maximum-clique search: a Tomita-style branch and bound with a
// greedy-colouring upper bound. The hardness reductions produce *dense*
// graphs (minimum degree ≥ n−14) with cliques of size Θ(n); the colouring
// bound keeps those tractable at the sizes the experiments certify.

// MaxClique returns one maximum clique of g (vertex labels, increasing)
// and its size. The empty graph yields an empty clique.
func (g *Graph) MaxClique() []int {
	s := &cliqueSearch{g: g, target: g.n + 1}
	s.run()
	return s.best
}

// CliqueNumber returns ω(g), the size of a maximum clique.
func (g *Graph) CliqueNumber() int { return len(g.MaxClique()) }

// HasCliqueOfSize reports whether g contains a clique on at least k
// vertices, stopping as soon as one is found.
func (g *Graph) HasCliqueOfSize(k int) bool {
	if k <= 0 {
		return true
	}
	if k > g.n {
		return false
	}
	s := &cliqueSearch{g: g, target: k}
	s.run()
	return len(s.best) >= k
}

type cliqueSearch struct {
	g      *Graph
	best   []int
	cur    []int
	target int // stop as soon as a clique of this size is found
	done   bool
}

func (s *cliqueSearch) run() {
	p := NewBitset(s.g.n)
	for v := 0; v < s.g.n; v++ {
		p.Add(v)
	}
	s.expand(p)
}

// expand grows the current clique s.cur using candidates from p.
func (s *cliqueSearch) expand(p *Bitset) {
	if s.done {
		return
	}
	if p.IsEmpty() {
		if len(s.cur) > len(s.best) {
			s.best = append([]int(nil), s.cur...)
			if len(s.best) >= s.target {
				s.done = true
			}
		}
		return
	}
	order, colors := s.colorSort(p)
	// Process candidates in decreasing colour order; prune when even the
	// colouring bound cannot beat the incumbent.
	for i := len(order) - 1; i >= 0; i-- {
		if s.done {
			return
		}
		if len(s.cur)+colors[i] <= len(s.best) {
			return
		}
		v := order[i]
		s.cur = append(s.cur, v)
		np := p.Clone()
		np.IntersectWith(s.g.neighbors(v))
		s.expand(np)
		s.cur = s.cur[:len(s.cur)-1]
		p.Remove(v)
	}
}

// colorSort greedily colours the candidate set and returns the vertices
// sorted by colour class (ascending) together with each vertex's colour
// number (1-based). colour[i] bounds the largest clique within
// {order[0..i]}.
func (s *cliqueSearch) colorSort(p *Bitset) (order, colors []int) {
	uncolored := p.Clone()
	color := 0
	for !uncolored.IsEmpty() {
		color++
		avail := uncolored.Clone()
		for {
			v := avail.First()
			if v < 0 {
				break
			}
			order = append(order, v)
			colors = append(colors, color)
			uncolored.Remove(v)
			avail.Remove(v)
			avail.DiffWith(s.g.neighbors(v))
		}
	}
	return order, colors
}

// GreedyClique returns a maximal (not necessarily maximum) clique built
// by repeatedly adding the candidate vertex of highest degree within the
// remaining candidate set. Used as a fast lower bound and as a
// polynomial-time baseline.
func (g *Graph) GreedyClique() []int {
	p := NewBitset(g.n)
	for v := 0; v < g.n; v++ {
		p.Add(v)
	}
	var clique []int
	for !p.IsEmpty() {
		best, bestDeg := -1, -1
		p.ForEach(func(v int) {
			if d := g.neighbors(v).IntersectCount(p); d > bestDeg {
				best, bestDeg = v, d
			}
		})
		clique = append(clique, best)
		p.IntersectWith(g.neighbors(best))
	}
	return clique
}
