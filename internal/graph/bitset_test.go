package graph

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Cap() != 130 {
		t.Fatalf("Cap = %d, want 130", b.Cap())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Add(i)
		if !b.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	if b.Count() != 8 {
		t.Errorf("Count = %d, want 8", b.Count())
	}
	b.Remove(64)
	if b.Has(64) {
		t.Error("Has(64) = true after Remove")
	}
	if b.IsEmpty() {
		t.Error("IsEmpty on non-empty set")
	}
	want := []int{0, 1, 63, 65, 127, 128, 129}
	got := b.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	if b.First() != 0 {
		t.Errorf("First = %d, want 0", b.First())
	}
	if NewBitset(10).First() != -1 {
		t.Error("First of empty set should be -1")
	}
}

func TestBitsetOutOfRange(t *testing.T) {
	b := NewBitset(10)
	for _, fn := range []func(){
		func() { b.Add(10) },
		func() { b.Add(-1) },
		func() { b.Has(10) },
		func() { b.Remove(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBitsetSetOps(t *testing.T) {
	mk := func(elems ...int) *Bitset {
		b := NewBitset(200)
		for _, e := range elems {
			b.Add(e)
		}
		return b
	}
	a := mk(1, 2, 3, 100, 150)
	b := mk(2, 3, 4, 150, 199)

	inter := a.Clone()
	inter.IntersectWith(b)
	if !inter.Equal(mk(2, 3, 150)) {
		t.Errorf("intersection = %v", inter.Elems())
	}
	if a.IntersectCount(b) != 3 {
		t.Errorf("IntersectCount = %d, want 3", a.IntersectCount(b))
	}
	uni := a.Clone()
	uni.UnionWith(b)
	if !uni.Equal(mk(1, 2, 3, 4, 100, 150, 199)) {
		t.Errorf("union = %v", uni.Elems())
	}
	diff := a.Clone()
	diff.DiffWith(b)
	if !diff.Equal(mk(1, 100)) {
		t.Errorf("difference = %v", diff.Elems())
	}
	// Clone independence.
	c := a.Clone()
	c.Add(50)
	if a.Has(50) {
		t.Error("Clone shares storage with original")
	}
	// Capacity mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("capacity mismatch did not panic")
		}
	}()
	a.UnionWith(NewBitset(10))
}

// Property: set operations agree with map-based reference semantics.
func TestQuickBitsetSemantics(t *testing.T) {
	prop := func(xs, ys []uint8) bool {
		const cap = 256
		bx, by := NewBitset(cap), NewBitset(cap)
		mx, my := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			bx.Add(int(x))
			mx[int(x)] = true
		}
		for _, y := range ys {
			by.Add(int(y))
			my[int(y)] = true
		}
		inter := bx.Clone()
		inter.IntersectWith(by)
		count := 0
		for k := range mx {
			if my[k] {
				count++
				if !inter.Has(k) {
					return false
				}
			}
		}
		if inter.Count() != count || bx.IntersectCount(by) != count {
			return false
		}
		if bx.Count() != len(mx) || by.Count() != len(my) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
