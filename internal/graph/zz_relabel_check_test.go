package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func relabelCheckData(n int, adj [][]bool) CanonData {
	return CanonData{
		N:           n,
		VertexBytes: func(v int) []byte { return []byte{'x'} },
		PairBytes: func(u, v int) []byte {
			if adj[u][v] {
				return []byte{'1'}
			}
			return []byte{'0'}
		},
	}
}

func TestZZRelabelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		n := 5 + rng.Intn(4)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					adj[i][j], adj[j][i] = true, true
				}
			}
		}
		_, enc0 := CanonicalOrder(relabelCheckData(n, adj))
		for rep := 0; rep < 5; rep++ {
			pi := rng.Perm(n)
			adj2 := make([][]bool, n)
			for i := range adj2 {
				adj2[i] = make([]bool, n)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					adj2[pi[i]][pi[j]] = adj[i][j]
				}
			}
			_, enc1 := CanonicalOrder(relabelCheckData(n, adj2))
			if !bytes.Equal(enc0, enc1) {
				t.Fatalf("trial %d rep %d: encodings differ for isomorphic graphs (n=%d)\nadj=%v\npi=%v", trial, rep, n, adj, pi)
			}
		}
	}
}
