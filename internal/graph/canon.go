// Canonical ordering of weighted-graph-shaped structures.
//
// CanonicalOrder computes a label-invariant vertex ordering for any
// structure describable as per-vertex bytes plus per-ordered-pair
// bytes: two isomorphic structures (identical up to a relabeling of
// the vertices) produce byte-identical canonical encodings, and two
// structures with the same encoding are isomorphic. The qon and qoh
// instance fingerprints are built on it.
//
// The algorithm is individualization–refinement, the classical
// canonical-labeling scheme (nauty's skeleton) specialized for the
// small, densely weighted instances this repository optimizes
// (n ≤ 32 at the serving layer):
//
//  1. Seed colors: each vertex is colored by a hash of its own bytes
//     together with the multiset of its pair bytes — a label-invariant
//     starting partition.
//  2. WL refinement: colors are iteratively rehashed with the sorted
//     multiset of (neighbor color, pair bytes) until the number of
//     color classes stops growing. On weighted instances this is
//     almost always discrete after one or two rounds.
//  3. Search: while the partition has ties, the minimal color class is
//     chosen (a label-invariant cell), one candidate is individualized,
//     the partition is re-refined, and the search recurses; the
//     canonical encoding is the lexicographic minimum over all explored
//     completions. Two prunes keep the tree small: branches whose
//     partial encoding already exceeds the best found are cut, and
//     candidates that are pairwise twins (swapping them is an
//     automorphism) collapse to one representative — the uniform-weight
//     hardness instances (cliques from the f_N reduction, star gadgets)
//     are fully symmetric, and twin classes reduce their search to a
//     single path.
//
// Hash collisions in the color refinement are harmless for
// correctness: colors only steer the search, and they are
// deterministic functions of the (label-invariant) data, so both
// relabelings of an instance see the same collisions and explore
// isomorphic trees. The final comparison is on full encoding bytes.
package graph

import "sort"

// CanonData describes a structure to canonicalize. All three callbacks
// must be label-invariant data accessors (they may depend on the
// vertex identities only through the data they return), and the
// returned bytes must not contain 0x00 — the encoder uses NUL as its
// component separator.
type CanonData struct {
	// N is the vertex count.
	N int
	// VertexBytes returns the per-vertex data of v (e.g. its relation
	// size), exact values included.
	VertexBytes func(v int) []byte
	// PairBytes returns u's complete view of the ordered pair (u, v):
	// adjacency, selectivity, and any direction-dependent weights of
	// both orientations. The encoding stores PairBytes(v, u) for every
	// pair placed u-before-v, so the pair data of both directions must
	// be recoverable from that single call.
	PairBytes func(u, v int) []byte
}

// CanonicalOrder returns ord — ord[k] is the original vertex placed at
// canonical position k — and the canonical encoding: the
// lexicographically least concatenation, over all label-invariant
// orderings explored, of each vertex's data row against its
// predecessors. Isomorphic structures yield identical encodings;
// identical encodings imply isomorphic structures.
func CanonicalOrder(d CanonData) ([]int, []byte) {
	n := d.N
	if n == 0 {
		return []int{}, []byte{}
	}
	c := &canonizer{n: n}
	c.vb = make([][]byte, n)
	for v := 0; v < n; v++ {
		c.vb[v] = d.VertexBytes(v)
	}
	c.pb = make([][][]byte, n)
	c.pc = make([][]uint64, n)
	for u := 0; u < n; u++ {
		c.pb[u] = make([][]byte, n)
		c.pc[u] = make([]uint64, n)
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			c.pb[u][v] = d.PairBytes(u, v)
			c.pc[u][v] = fnvBytes(fnvOffset, c.pb[u][v])
		}
	}
	c.computeTwins()

	// Seed colors: vertex bytes + sorted multiset of pair codes.
	colors := make([]uint64, n)
	sig := make([]uint64, 0, n-1)
	for v := 0; v < n; v++ {
		sig = sig[:0]
		for u := 0; u < n; u++ {
			if u != v {
				sig = append(sig, c.pc[v][u])
			}
		}
		sortU64(sig)
		h := fnvBytes(fnvOffset, c.vb[v])
		for _, s := range sig {
			h = fnvU64(h, s)
		}
		colors[v] = h
	}
	colors = c.refine(colors)

	c.ord = make([]int, 0, n)
	c.placed = make([]bool, n)
	c.buf = make([]byte, 0, 256)
	c.search(colors, 0, 0, false)

	ord := make([]int, n)
	copy(ord, c.bestOrd)
	return ord, c.best
}

// canonizer carries the search state of one CanonicalOrder call.
type canonizer struct {
	n    int
	vb   [][]byte   // vertex bytes
	pb   [][][]byte // pair bytes, pb[u][v] = u's view of (u,v)
	pc   [][]uint64 // hash of pb
	twin [][]bool   // twin[u][v]: swapping u and v is an automorphism

	ord     []int  // current prefix (original vertex per position)
	placed  []bool // membership of ord
	buf     []byte // encoding of the current prefix
	best    []byte // least complete encoding found
	bestOrd []int  // its ordering
}

// computeTwins marks vertex pairs whose transposition is an
// automorphism: identical vertex bytes, consistent cross-pair bytes,
// and identical views of every third vertex. Pairwise twins within a
// candidate cell are interchangeable — their search subtrees produce
// identical encodings — so only one representative is explored.
func (c *canonizer) computeTwins() {
	n := c.n
	c.twin = make([][]bool, n)
	for u := 0; u < n; u++ {
		c.twin[u] = make([]bool, n)
	}
	for u := 0; u < n; u++ {
	pair:
		for v := u + 1; v < n; v++ {
			if !bytesEq(c.vb[u], c.vb[v]) || !bytesEq(c.pb[u][v], c.pb[v][u]) {
				continue
			}
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if !bytesEq(c.pb[u][w], c.pb[v][w]) || !bytesEq(c.pb[w][u], c.pb[w][v]) {
					continue pair
				}
			}
			c.twin[u][v], c.twin[v][u] = true, true
		}
	}
}

// refine runs WL-style color refinement to a fixed point: each round
// rehashes every vertex with the sorted multiset of (color, pair code)
// over all other vertices, stopping when the class count stops
// growing (or everything is discrete).
func (c *canonizer) refine(colors []uint64) []uint64 {
	n := c.n
	cur := append([]uint64(nil), colors...)
	next := make([]uint64, n)
	sig := make([]uint64, 0, n-1)
	classes := countDistinct(cur)
	for round := 0; round < n && classes < n; round++ {
		for v := 0; v < n; v++ {
			sig = sig[:0]
			for u := 0; u < n; u++ {
				if u != v {
					sig = append(sig, fnvU64(cur[u], c.pc[v][u]))
				}
			}
			sortU64(sig)
			h := fnvU64(fnvOffset, cur[v])
			for _, s := range sig {
				h = fnvU64(h, s)
			}
			next[v] = h
		}
		nc := countDistinct(next)
		if nc <= classes {
			break
		}
		classes = nc
		cur, next = next, cur
	}
	return cur
}

// search extends the current prefix by every canonical candidate.
// off is the length of buf known equal to best; alreadyLess marks a
// branch strictly below the current best.
func (c *canonizer) search(colors []uint64, depth, off int, alreadyLess bool) {
	n := c.n
	if depth == n {
		if c.best == nil || alreadyLess || lexLess(c.buf, c.best) {
			c.best = append(c.best[:0:0], c.buf...)
			c.bestOrd = append(c.bestOrd[:0:0], c.ord...)
		}
		return
	}
	// Target cell: unplaced vertices of minimal color. The color values
	// are data-derived hashes, so the cell is label-invariant.
	var minColor uint64
	first := true
	for v := 0; v < n; v++ {
		if !c.placed[v] {
			if first || colors[v] < minColor {
				minColor, first = colors[v], false
			}
		}
	}
	var cands []int
	for v := 0; v < n; v++ {
		if !c.placed[v] && colors[v] == minColor {
			cands = append(cands, v)
		}
	}
	// Collapse twin classes: one representative each. Classes are built
	// greedily requiring pairwise twin-ness, so every transposition
	// within a class is an automorphism and the pruned subtrees are
	// byte-identical to the explored one.
	reps := cands[:0]
	for _, v := range cands {
		dup := false
		for _, r := range reps {
			if c.twin[r][v] {
				dup = true
				break
			}
		}
		if !dup {
			reps = append(reps, v)
		}
	}
	// Explore cheapest row first so the best tightens early.
	rows := make([][]byte, len(reps))
	for i, v := range reps {
		rows[i] = c.row(v)
	}
	idx := make([]int, len(reps))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lexLess(rows[idx[a]], rows[idx[b]]) })

	mark := len(c.buf)
	for _, j := range idx {
		v := reps[j]
		c.buf = append(c.buf, rows[j]...)
		less, prune := alreadyLess, false
		newOff := off
		if c.best != nil && !less {
			less, prune, newOff = c.compare(off)
		}
		if !prune {
			c.ord = append(c.ord, v)
			c.placed[v] = true
			child := append([]uint64(nil), colors...)
			child[v] = fnvU64(0x9e3779b97f4a7c15, uint64(depth))
			c.search(c.refine(child), depth+1, newOff, less)
			c.placed[v] = false
			c.ord = c.ord[:len(c.ord)-1]
		}
		c.buf = c.buf[:mark]
	}
}

// row is the encoding contribution of placing v next: its vertex bytes
// then its pair view against each placed vertex in prefix order, all
// NUL-separated.
func (c *canonizer) row(v int) []byte {
	out := make([]byte, 0, 16*(len(c.ord)+1))
	out = append(out, c.vb[v]...)
	out = append(out, 0)
	for _, u := range c.ord {
		out = append(out, c.pb[v][u]...)
		out = append(out, 0)
	}
	return out
}

// compare advances the equality frontier between buf and best from
// off. It reports whether the branch is now strictly less, whether it
// must be pruned (strictly greater, or best is a proper prefix), and
// the new frontier.
func (c *canonizer) compare(off int) (less, prune bool, newOff int) {
	i := off
	for ; i < len(c.buf) && i < len(c.best); i++ {
		if c.buf[i] != c.best[i] {
			if c.buf[i] < c.best[i] {
				return true, false, i
			}
			return false, true, i
		}
	}
	if i == len(c.best) && len(c.buf) > len(c.best) {
		return false, true, i // best is a proper prefix of buf: buf > best
	}
	return false, false, i
}

// lexLess is bytes.Compare(a, b) < 0 without importing bytes into the
// hot path signature (kept local for clarity).
func lexLess(a, b []byte) bool {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	for i := 0; i < m; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func countDistinct(vs []uint64) int {
	seen := make(map[uint64]struct{}, len(vs))
	for _, v := range vs {
		seen[v] = struct{}{}
	}
	return len(seen)
}

func sortU64(vs []uint64) {
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
}

// FNV-1a, hand-rolled so colors are stable across processes (the
// fingerprints derived downstream must not vary run to run the way
// maphash seeds do).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, x := range b {
		h = (h ^ uint64(x)) * fnvPrime
	}
	return h
}

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}
