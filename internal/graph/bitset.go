package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers, used for
// adjacency rows and vertex subsets. The zero value of a slice expression
// is not usable; construct with NewBitset.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns an empty bitset with capacity for values 0..n-1.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("graph: NewBitset with negative capacity")
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the bitset capacity.
func (b *Bitset) Cap() int { return b.n }

func (b *Bitset) checkIndex(i int) {
	if i < 0 || i >= b.n {
		panic("graph: bitset index out of range")
	}
}

// Add inserts i into the set.
func (b *Bitset) Add(i int) {
	b.checkIndex(i)
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Remove deletes i from the set.
func (b *Bitset) Remove(i int) {
	b.checkIndex(i)
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool {
	b.checkIndex(i)
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (b *Bitset) IsEmpty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// CopyFrom overwrites b's contents with o's, without allocating. The
// capacities must match.
func (b *Bitset) CopyFrom(o *Bitset) {
	b.sameCap(o)
	copy(b.words, o.words)
}

// Clear removes every element.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

func (b *Bitset) sameCap(o *Bitset) {
	if b.n != o.n {
		panic("graph: bitset capacity mismatch")
	}
}

// IntersectWith sets b to b ∩ o.
func (b *Bitset) IntersectWith(o *Bitset) {
	b.sameCap(o)
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// UnionWith sets b to b ∪ o.
func (b *Bitset) UnionWith(o *Bitset) {
	b.sameCap(o)
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// DiffWith sets b to b \ o.
func (b *Bitset) DiffWith(o *Bitset) {
	b.sameCap(o)
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// IntersectCount returns |b ∩ o| without allocating.
func (b *Bitset) IntersectCount(o *Bitset) int {
	b.sameCap(o)
	c := 0
	for i := range b.words {
		c += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return c
}

// Equal reports whether b and o contain exactly the same elements.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Elems returns the elements in increasing order.
func (b *Bitset) Elems() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls fn for each element in increasing order.
func (b *Bitset) ForEach(fn func(int)) {
	for wi, w := range b.words {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			fn(i)
			w &= w - 1
		}
	}
}

// First returns the smallest element, or -1 if the set is empty.
func (b *Bitset) First() int {
	for wi, w := range b.words {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}
