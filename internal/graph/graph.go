// Package graph implements undirected graphs with the operations the
// hardness reductions need: complements, induced subgraphs, clique
// augmentation, connectivity, exact maximum clique, and generators for
// random and planted-clique graphs.
//
// Vertices are the integers 0..N-1. Graphs are mutable during
// construction; the reduction code treats them as immutable afterwards.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..n-1 with bitset
// adjacency rows.
type Graph struct {
	n   int
	adj []*Bitset
}

// New returns an edgeless graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: New with negative vertex count")
	}
	g := &Graph{n: n, adj: make([]*Bitset, n)}
	for i := range g.adj {
		g.adj[i] = NewBitset(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.adj[u].Remove(v)
	g.adj[v].Remove(u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	return g.adj[u].Has(v)
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.adj[v].Count() }

// MinDegree returns the smallest vertex degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for v := 0; v < g.n; v++ {
		total += g.adj[v].Count()
	}
	return total / 2
}

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		})
	}
	return out
}

// Neighbors returns a copy of v's adjacency set.
func (g *Graph) Neighbors(v int) *Bitset { return g.adj[v].Clone() }

// neighbors returns the internal adjacency row; callers must not mutate it.
func (g *Graph) neighbors(v int) *Bitset { return g.adj[v] }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, adj: make([]*Bitset, g.n)}
	for i, row := range g.adj {
		c.adj[i] = row.Clone()
	}
	return c
}

// Equal reports whether g and o have identical vertex and edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for i := range g.adj {
		if !g.adj[i].Equal(o.adj[i]) {
			return false
		}
	}
	return true
}

// Complement returns the complement graph: {u,v} is an edge iff it is not
// an edge of g.
func (g *Graph) Complement() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(u, v) {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabelled 0..len(vs)-1 in the given order. Duplicate vertices panic.
func (g *Graph) InducedSubgraph(vs []int) *Graph {
	sub := New(len(vs))
	seen := make(map[int]bool, len(vs))
	for _, v := range vs {
		if seen[v] {
			panic(fmt.Sprintf("graph: duplicate vertex %d in InducedSubgraph", v))
		}
		seen[v] = true
	}
	for i, u := range vs {
		for j := i + 1; j < len(vs); j++ {
			if g.HasEdge(u, vs[j]) {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub
}

// EdgesWithin returns the number of edges of g whose endpoints both lie
// in the given vertex set.
func (g *Graph) EdgesWithin(set *Bitset) int {
	total := 0
	set.ForEach(func(v int) {
		total += g.adj[v].IntersectCount(set)
	})
	return total / 2
}

// IsClique reports whether the given vertices are pairwise adjacent.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// IsConnected reports whether g is connected (the empty graph and the
// single-vertex graph count as connected).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := NewBitset(g.n)
	stack := []int{0}
	seen.Add(0)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.adj[v].ForEach(func(u int) {
			if !seen.Has(u) {
				seen.Add(u)
				stack = append(stack, u)
			}
		})
	}
	return seen.Count() == g.n
}

// AugmentWithClique returns a new graph consisting of g plus k fresh
// vertices that form a clique among themselves and are adjacent to every
// vertex of g (the augmentation step of Lemmas 3 and 4). The original
// vertices keep their labels; new vertices are g.N()..g.N()+k-1.
func (g *Graph) AugmentWithClique(k int) *Graph {
	if k < 0 {
		panic("graph: AugmentWithClique with negative k")
	}
	out := New(g.n + k)
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
	}
	for i := g.n; i < g.n+k; i++ {
		for j := 0; j < i; j++ {
			out.AddEdge(i, j)
		}
	}
	return out
}

// DisjointUnion returns the disjoint union of g and h; h's vertices are
// relabelled g.N()..g.N()+h.N()-1.
func (g *Graph) DisjointUnion(h *Graph) *Graph {
	out := New(g.n + h.n)
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
	}
	for _, e := range h.Edges() {
		out.AddEdge(e[0]+g.n, e[1]+g.n)
	}
	return out
}

// String renders a short description, e.g. "graph(n=5, m=7)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.EdgeCount())
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, g.n)
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}
