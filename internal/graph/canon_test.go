package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// testStruct is a small weighted structure for exercising
// CanonicalOrder directly: an adjacency matrix with per-vertex and
// per-ordered-pair integer data.
type testStruct struct {
	n    int
	vert []int
	pair [][]int // pair[u][v], asymmetric
	adj  [][]bool
}

func (s *testStruct) data() CanonData {
	return CanonData{
		N: s.n,
		VertexBytes: func(v int) []byte {
			return []byte(fmt.Sprintf("v%d", s.vert[v]))
		},
		PairBytes: func(u, v int) []byte {
			e := 0
			if s.adj[u][v] {
				e = 1
			}
			return []byte(fmt.Sprintf("e%d;%d;%d", e, s.pair[u][v], s.pair[v][u]))
		},
	}
}

// permuted relabels s by pi: vertex v becomes pi[v].
func (s *testStruct) permuted(pi []int) *testStruct {
	t := &testStruct{n: s.n, vert: make([]int, s.n)}
	t.pair = make([][]int, s.n)
	t.adj = make([][]bool, s.n)
	for v := 0; v < s.n; v++ {
		t.pair[v] = make([]int, s.n)
		t.adj[v] = make([]bool, s.n)
	}
	for v := 0; v < s.n; v++ {
		t.vert[pi[v]] = s.vert[v]
		for u := 0; u < s.n; u++ {
			if u == v {
				continue
			}
			t.pair[pi[v]][pi[u]] = s.pair[v][u]
			t.adj[pi[v]][pi[u]] = s.adj[v][u]
		}
	}
	return t
}

func randomStruct(n int, rng *rand.Rand, valueRange int) *testStruct {
	s := &testStruct{n: n, vert: make([]int, n)}
	s.pair = make([][]int, n)
	s.adj = make([][]bool, n)
	for v := 0; v < n; v++ {
		s.pair[v] = make([]int, n)
		s.adj[v] = make([]bool, n)
		s.vert[v] = rng.Intn(valueRange)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(2) == 0 {
				s.adj[u][v], s.adj[v][u] = true, true
			}
			s.pair[u][v] = rng.Intn(valueRange)
			s.pair[v][u] = rng.Intn(valueRange)
		}
	}
	return s
}

func randomPerm(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}

func TestCanonicalOrderInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(9)
		// Small value ranges force repeated colors and a real search;
		// large ranges make refinement discrete immediately. Cover both.
		valueRange := []int{2, 3, 100}[trial%3]
		s := randomStruct(n, rng, valueRange)
		_, enc := CanonicalOrder(s.data())
		for rep := 0; rep < 10; rep++ {
			pi := randomPerm(n, rng)
			_, enc2 := CanonicalOrder(s.permuted(pi).data())
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("trial %d rep %d: relabeled encoding differs (n=%d, range=%d)",
					trial, rep, n, valueRange)
			}
		}
	}
}

func TestCanonicalOrderDistinguishesNonIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		s := randomStruct(n, rng, 3)
		// Mutate one pair value: the structures are no longer equal, and
		// with asymmetric pair data almost surely non-isomorphic; the
		// encodings must differ whenever they are.
		u, v := rng.Intn(n), rng.Intn(n)
		for u == v {
			v = rng.Intn(n)
		}
		m := s.permuted(identityPerm(n))
		m.pair[u][v] += 1000 // value outside the generator's range
		_, enc := CanonicalOrder(s.data())
		_, enc2 := CanonicalOrder(m.data())
		if bytes.Equal(enc, enc2) {
			t.Fatalf("trial %d: mutated structure has identical encoding", trial)
		}
	}
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// TestCanonicalOrderUniformClique exercises the twin-pruning path: a
// fully symmetric structure has n! relabelings but the search must
// collapse to a single path and still be invariant.
func TestCanonicalOrderUniformClique(t *testing.T) {
	n := 9
	s := &testStruct{n: n, vert: make([]int, n)}
	s.pair = make([][]int, n)
	s.adj = make([][]bool, n)
	for v := 0; v < n; v++ {
		s.pair[v] = make([]int, n)
		s.adj[v] = make([]bool, n)
		s.vert[v] = 7
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				s.adj[u][v] = true
				s.pair[u][v] = 5
			}
		}
	}
	_, enc := CanonicalOrder(s.data())
	rng := rand.New(rand.NewSource(63))
	for rep := 0; rep < 5; rep++ {
		_, enc2 := CanonicalOrder(s.permuted(randomPerm(n, rng)).data())
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("rep %d: uniform clique encoding not invariant", rep)
		}
	}
}

// TestCanonicalOrderIsValidPermutation checks the returned ordering is
// a permutation and that re-encoding the structure in that order
// reproduces the canonical bytes.
func TestCanonicalOrderIsValidPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	s := randomStruct(7, rng, 3)
	ord, enc := CanonicalOrder(s.data())
	if len(ord) != s.n {
		t.Fatalf("ord has %d entries, want %d", len(ord), s.n)
	}
	seen := make([]bool, s.n)
	for _, v := range ord {
		if v < 0 || v >= s.n || seen[v] {
			t.Fatalf("ord %v is not a permutation", ord)
		}
		seen[v] = true
	}
	// Rebuild the encoding directly from ord.
	d := s.data()
	var want []byte
	for k, v := range ord {
		want = append(want, d.VertexBytes(v)...)
		want = append(want, 0)
		for _, u := range ord[:k] {
			want = append(want, d.PairBytes(v, u)...)
			want = append(want, 0)
		}
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("encoding does not match re-serialization along ord")
	}
}

func TestCanonicalOrderEmptyAndSingle(t *testing.T) {
	ord, enc := CanonicalOrder(CanonData{N: 0})
	if len(ord) != 0 || len(enc) != 0 {
		t.Fatalf("empty structure: ord=%v enc=%q", ord, enc)
	}
	d := CanonData{
		N:           1,
		VertexBytes: func(int) []byte { return []byte("x") },
		PairBytes:   func(int, int) []byte { panic("no pairs") },
	}
	ord, enc = CanonicalOrder(d)
	if len(ord) != 1 || ord[0] != 0 {
		t.Fatalf("single vertex: ord=%v", ord)
	}
	if !bytes.Equal(enc, []byte{'x', 0}) {
		t.Fatalf("single vertex enc=%q", enc)
	}
}
