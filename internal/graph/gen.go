package graph

import (
	"fmt"
	"math/rand"
)

// Random returns an Erdős–Rényi G(n, p) graph drawn with the given seed.
func Random(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// ConnectedRandom returns a connected graph with exactly n vertices and m
// edges, built as a random spanning tree plus m−(n−1) random extra edges.
// It panics if m is outside [n−1, n(n−1)/2] (for n ≥ 1).
func ConnectedRandom(n, m int, seed int64) *Graph {
	if n < 1 {
		panic("graph: ConnectedRandom needs n ≥ 1")
	}
	maxEdges := n * (n - 1) / 2
	if m < n-1 || m > maxEdges {
		panic(fmt.Sprintf("graph: ConnectedRandom(n=%d) needs m in [%d, %d], got %d", n, n-1, maxEdges, m))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// Random spanning tree: attach each vertex to a random earlier one.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for g.EdgeCount() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// PlantedClique returns a G(n, p) graph with a clique planted on k
// vertices, together with the planted vertex set.
func PlantedClique(n, k int, p float64, seed int64) (*Graph, []int) {
	if k > n {
		panic("graph: PlantedClique with k > n")
	}
	rng := rand.New(rand.NewSource(seed))
	g := Random(n, p, seed+1)
	members := rng.Perm(n)[:k]
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if !g.HasEdge(members[i], members[j]) {
				g.AddEdge(members[i], members[j])
			}
		}
	}
	return g, members
}

// CompleteMultipartite returns the complete multipartite graph with the
// given part sizes: two vertices are adjacent iff they lie in different
// parts. Its clique number is exactly the number of non-empty parts, and
// its minimum degree is n − max(part size) — which is how the experiment
// harness manufactures dense graphs with a *certified* clique number at
// sizes where exact search would be infeasible.
func CompleteMultipartite(parts []int) *Graph {
	n := 0
	for _, p := range parts {
		if p < 0 {
			panic("graph: negative part size")
		}
		n += p
	}
	g := New(n)
	// part[v] = index of v's part.
	part := make([]int, n)
	v := 0
	for pi, size := range parts {
		for i := 0; i < size; i++ {
			part[v] = pi
			v++
		}
	}
	for u := 0; u < n; u++ {
		for w := u + 1; w < n; w++ {
			if part[u] != part[w] {
				g.AddEdge(u, w)
			}
		}
	}
	return g
}

// BalancedParts splits n vertices into r parts whose sizes differ by at
// most one (helper for CompleteMultipartite: clique number exactly r,
// maximum part size ⌈n/r⌉).
func BalancedParts(n, r int) []int {
	if r < 1 || r > n {
		panic(fmt.Sprintf("graph: BalancedParts(n=%d) needs r in [1, n], got %d", n, r))
	}
	parts := make([]int, r)
	for i := range parts {
		parts[i] = n / r
	}
	for i := 0; i < n%r; i++ {
		parts[i]++
	}
	return parts
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Path returns the path graph on n vertices (edges i—i+1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n ≥ 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n ≥ 3")
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns the star graph with centre 0 and n−1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// EnsureMinDegree adds random edges until every vertex has degree at
// least d (the CLIQUE problem variant the paper reduces from requires
// minimum degree ≥ n−14). It panics if d ≥ n.
func EnsureMinDegree(g *Graph, d int, seed int64) {
	n := g.N()
	if d >= n {
		panic("graph: EnsureMinDegree with d ≥ n")
	}
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < n; v++ {
		for g.Degree(v) < d {
			u := rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
}
