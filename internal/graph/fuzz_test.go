package graph

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON checks that arbitrary JSON never panics the graph
// decoder and that accepted graphs round-trip.
func FuzzGraphJSON(f *testing.F) {
	f.Add(`{"n":3,"edges":[[0,1],[1,2]]}`)
	f.Add(`{"n":0,"edges":[]}`)
	f.Add(`{"n":2,"edges":[[0,0]]}`)
	f.Add(`{"n":-1}`)
	f.Add(`{"n":1000000000000}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		var g Graph
		if err := json.Unmarshal([]byte(input), &g); err != nil {
			return
		}
		data, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("marshal of accepted graph: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if !back.Equal(&g) {
			t.Fatal("round trip changed the graph")
		}
	})
}
