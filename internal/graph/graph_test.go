package graph

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	if g.N() != 5 || g.EdgeCount() != 3 {
		t.Fatalf("got n=%d m=%d, want 5, 3", g.N(), g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge not symmetric")
	}
	if g.HasEdge(3, 4) || g.HasEdge(2, 2) {
		t.Error("spurious edge reported")
	}
	if g.Degree(1) != 2 || g.Degree(4) != 0 {
		t.Error("degrees wrong")
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.EdgeCount() != 2 {
		t.Error("RemoveEdge failed")
	}
	// Re-adding an existing edge is idempotent.
	g.AddEdge(1, 2)
	if g.EdgeCount() != 2 {
		t.Error("duplicate AddEdge changed edge count")
	}
	defer func() {
		if recover() == nil {
			t.Error("self-loop did not panic")
		}
	}()
	g.AddEdge(3, 3)
}

func TestComplement(t *testing.T) {
	g := Path(4) // 0-1-2-3
	c := g.Complement()
	want := [][2]int{{0, 2}, {0, 3}, {1, 3}}
	if c.EdgeCount() != len(want) {
		t.Fatalf("complement has %d edges, want %d", c.EdgeCount(), len(want))
	}
	for _, e := range want {
		if !c.HasEdge(e[0], e[1]) {
			t.Errorf("complement missing edge %v", e)
		}
	}
	// Complement is an involution.
	if !c.Complement().Equal(g) {
		t.Error("double complement != original")
	}
}

func TestInducedSubgraphAndClique(t *testing.T) {
	g := Complete(6)
	g.RemoveEdge(0, 5)
	sub := g.InducedSubgraph([]int{1, 2, 3})
	if sub.N() != 3 || sub.EdgeCount() != 3 {
		t.Errorf("induced subgraph wrong: %v", sub)
	}
	if !g.IsClique([]int{1, 2, 3, 4}) {
		t.Error("IsClique false on clique")
	}
	if g.IsClique([]int{0, 1, 5}) {
		t.Error("IsClique true despite missing edge")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate vertex did not panic")
		}
	}()
	g.InducedSubgraph([]int{1, 1})
}

func TestEdgesWithin(t *testing.T) {
	g := Complete(5)
	set := NewBitset(5)
	for _, v := range []int{0, 1, 2} {
		set.Add(v)
	}
	if got := g.EdgesWithin(set); got != 3 {
		t.Errorf("EdgesWithin = %d, want 3", got)
	}
}

func TestConnectivity(t *testing.T) {
	if !New(0).IsConnected() || !New(1).IsConnected() {
		t.Error("trivial graphs should be connected")
	}
	if New(2).IsConnected() {
		t.Error("two isolated vertices reported connected")
	}
	if !Path(10).IsConnected() || !Cycle(5).IsConnected() || !Star(7).IsConnected() {
		t.Error("connected graph reported disconnected")
	}
	g := Path(4)
	g.RemoveEdge(1, 2)
	if g.IsConnected() {
		t.Error("split path reported connected")
	}
}

func TestAugmentWithClique(t *testing.T) {
	g := Path(3) // clique number 2
	aug := g.AugmentWithClique(4)
	if aug.N() != 7 {
		t.Fatalf("augmented n = %d, want 7", aug.N())
	}
	// New vertices form a clique and see everyone.
	if !aug.IsClique([]int{3, 4, 5, 6}) {
		t.Error("augmentation vertices are not a clique")
	}
	for v := 3; v < 7; v++ {
		if aug.Degree(v) != 6 {
			t.Errorf("augmentation vertex %d has degree %d, want 6", v, aug.Degree(v))
		}
	}
	// Clique number grows by exactly k.
	if got := aug.CliqueNumber(); got != 2+4 {
		t.Errorf("augmented clique number = %d, want 6", got)
	}
	// Original edges preserved.
	if !aug.HasEdge(0, 1) || aug.HasEdge(0, 2) {
		t.Error("augmentation altered original edges")
	}
}

func TestDisjointUnion(t *testing.T) {
	u := Complete(3).DisjointUnion(Path(3))
	if u.N() != 6 || u.EdgeCount() != 3+2 {
		t.Fatalf("union wrong: %v", u)
	}
	if u.HasEdge(2, 3) {
		t.Error("union created a crossing edge")
	}
	if !u.HasEdge(3, 4) {
		t.Error("union lost a relabelled edge")
	}
}

func TestMaxCliqueKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", New(0), 0},
		{"edgeless", New(5), 1},
		{"K6", Complete(6), 6},
		{"path10", Path(10), 2},
		{"cycle5", Cycle(5), 2},
		{"cycle3", Cycle(3), 3},
		{"star8", Star(8), 2},
		{"multipartite 4x3", CompleteMultipartite([]int{3, 3, 3, 3}), 4},
		{"multipartite mixed", CompleteMultipartite([]int{1, 2, 5, 7}), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clique := tc.g.MaxClique()
			if len(clique) != tc.want {
				t.Fatalf("clique number = %d, want %d (clique %v)", len(clique), tc.want, clique)
			}
			if !tc.g.IsClique(clique) {
				t.Fatalf("returned set %v is not a clique", clique)
			}
			if tc.want > 0 && !tc.g.HasCliqueOfSize(tc.want) {
				t.Error("HasCliqueOfSize(ω) = false")
			}
			if tc.g.HasCliqueOfSize(tc.want + 1) {
				t.Error("HasCliqueOfSize(ω+1) = true")
			}
		})
	}
}

// Property: MaxClique agrees with brute-force enumeration on small
// random graphs, and GreedyClique always returns a valid clique no
// larger than the maximum.
func TestQuickMaxCliqueMatchesBruteForce(t *testing.T) {
	brute := func(g *Graph) int {
		n := g.N()
		best := 0
		for mask := 0; mask < 1<<n; mask++ {
			var vs []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					vs = append(vs, v)
				}
			}
			if len(vs) > best && g.IsClique(vs) {
				best = len(vs)
			}
		}
		return best
	}
	prop := func(seed int64, pRaw uint8) bool {
		p := float64(pRaw) / 255
		g := Random(9, p, seed)
		want := brute(g)
		got := g.MaxClique()
		if len(got) != want || !g.IsClique(got) {
			return false
		}
		greedy := g.GreedyClique()
		return g.IsClique(greedy) && len(greedy) <= want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPlantedClique(t *testing.T) {
	g, members := PlantedClique(40, 12, 0.3, 7)
	if !g.IsClique(members) {
		t.Fatal("planted members are not a clique")
	}
	if !g.HasCliqueOfSize(12) {
		t.Error("planted clique not found")
	}
}

func TestConnectedRandom(t *testing.T) {
	for _, m := range []int{9, 15, 30, 45} {
		g := ConnectedRandom(10, m, 3)
		if g.EdgeCount() != m {
			t.Errorf("ConnectedRandom(10, %d) has %d edges", m, g.EdgeCount())
		}
		if !g.IsConnected() {
			t.Errorf("ConnectedRandom(10, %d) is disconnected", m)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("infeasible edge count did not panic")
		}
	}()
	ConnectedRandom(10, 8, 1)
}

func TestBalancedParts(t *testing.T) {
	parts := BalancedParts(10, 3)
	sum, max := 0, 0
	for _, p := range parts {
		sum += p
		if p > max {
			max = p
		}
	}
	if sum != 10 || len(parts) != 3 || max != 4 {
		t.Errorf("BalancedParts(10,3) = %v", parts)
	}
}

func TestEnsureMinDegree(t *testing.T) {
	g := Random(30, 0.1, 5)
	EnsureMinDegree(g, 30-14, 6)
	if g.MinDegree() < 16 {
		t.Errorf("min degree = %d, want ≥ 16", g.MinDegree())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := Random(12, 0.4, 9)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Error("JSON round trip changed the graph")
	}
	var bad Graph
	if err := json.Unmarshal([]byte(`{"n":2,"edges":[[0,5]]}`), &bad); err == nil {
		t.Error("invalid edge accepted")
	}
}

func TestDOT(t *testing.T) {
	dot := Path(3).DOT("p3")
	for _, want := range []string{"graph p3 {", "v0 -- v1", "v1 -- v2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestDegreeSequence(t *testing.T) {
	ds := Star(5).DegreeSequence()
	if ds[0] != 4 || ds[1] != 1 || ds[4] != 1 {
		t.Errorf("Star(5) degree sequence = %v", ds)
	}
}

func TestUnmarshalRejectsHugeN(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"n":1000000000000,"edges":[]}`), &g); err == nil {
		t.Error("absurd vertex count accepted")
	}
	if err := json.Unmarshal([]byte(`{"n":16385,"edges":[]}`), &g); err == nil {
		t.Error("vertex count above MaxJSONVertices accepted")
	}
}

// Lemma 7 of the paper: any graph satisfies
// |E| ≤ n(n−1)/2 − n + ω(G). Verified against exact max-clique on
// random graphs — the combinatorial bound both hardness reductions
// hinge on (it converts a clique deficit into an edge deficit).
func TestQuickLemma7EdgeBound(t *testing.T) {
	prop := func(seed int64, pRaw uint8) bool {
		p := float64(pRaw) / 255
		g := Random(9, p, seed)
		n := g.N()
		omega := g.CliqueNumber()
		return g.EdgeCount() <= n*(n-1)/2-n+omega
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
