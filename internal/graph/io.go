package graph

import (
	"encoding/json"
	"fmt"
	"strings"
)

// graphJSON is the serialized form of a Graph.
type graphJSON struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON encodes g as {"n": ..., "edges": [[u,v], ...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(graphJSON{N: g.n, Edges: g.Edges()})
}

// MaxJSONVertices bounds the vertex count UnmarshalJSON accepts:
// adjacency storage is Θ(n²) bits (32 MB at this limit), so an
// adversarial or corrupt "n" would otherwise allocate unboundedly
// before any edge is validated.
const MaxJSONVertices = 1 << 14

// UnmarshalJSON decodes the format MarshalJSON emits.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var gj graphJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return err
	}
	if gj.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", gj.N)
	}
	if gj.N > MaxJSONVertices {
		return fmt.Errorf("graph: vertex count %d exceeds decode limit %d", gj.N, MaxJSONVertices)
	}
	ng := New(gj.N)
	for _, e := range gj.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= gj.N || v < 0 || v >= gj.N || u == v {
			return fmt.Errorf("graph: invalid edge {%d, %d} for n=%d", u, v, gj.N)
		}
		ng.AddEdge(u, v)
	}
	*g = *ng
	return nil
}

// DOT renders g in Graphviz DOT format.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&b, "  v%d;\n", v)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  v%d -- v%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
