// Command benchdiff guards against performance regressions: it runs
// the repo's fixed regression benchmarks (BenchmarkReg* in
// benchreg_test.go) and compares ns/op and allocs/op against the
// checked-in baselines, failing when either metric regresses by more
// than the threshold (default 20%). The set is partitioned into three
// pinned files: the serving-path benchmarks (BenchmarkRegServe*
// cache-hit/miss/batch allocation budget) against BENCH_serve.json,
// the optimization-layer benchmarks (BenchmarkRegOpt* cost-kernel set
// plus BenchmarkRegFingerprint/BenchmarkRegBatch* canonical-identity
// set) against BENCH_opt.json, everything else against BENCH_qon.json;
// all three files gate.
//
// Benchmarks run with -benchtime 300x -count 5, in three separate
// go-test passes, and the minimum across all fifteen counts is
// compared — the minimum is the least noisy estimator of a benchmark's
// true cost on a shared machine. (30x proved noise-dominated for the
// microsecond-scale benchmarks: scheduling jitter on a single-core VM
// swamps a 240µs measurement window. And a single pass proved
// window-correlated: -count repetitions run back to back, so all five
// samples share one load regime of a noisy host — pinning a baseline
// during an idle burst made every steady-state compare look like a
// 1.3× regression. Multiple passes spread each benchmark's samples
// across the suite's whole wall time, so the per-benchmark minimum
// spans load swings on both the -update and the compare side.)
//
// Usage (from the repository root):
//
//	go run ./scripts/benchdiff            # compare against baselines
//	go run ./scripts/benchdiff -update    # rewrite both baselines
//	go run ./scripts/benchdiff -inject 2  # self-test: fake a 2× slowdown
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// optPrefixes route a benchmark into the optimization-layer baseline
// file: the tiered cost-kernel set plus the canonical-identity set the
// batch API added (fingerprinting, batch dedup throughput), the cluster
// coordinator's per-request ring-routing cost, the replica digest the
// anti-entropy loop leans on, and the adaptive router's per-request
// classification cost.
var optPrefixes = []string{"BenchmarkRegOpt", "BenchmarkRegFingerprint", "BenchmarkRegBatch", "BenchmarkRegRing", "BenchmarkRegReplica", "BenchmarkRegClassify"}

// isServeBench routes the serving-hot-path set (cache-hit, cache-miss
// full-rung, batch dedup) into BENCH_serve.json — the allocation
// budget of the pooled request path. Checked before isOptBench:
// BenchmarkRegServeBatch must not fall into the BenchmarkRegBatch
// canonical-identity set.
func isServeBench(b string) bool { return strings.HasPrefix(b, "BenchmarkRegServe") }

func isOptBench(b string) bool {
	if isServeBench(b) {
		return false
	}
	for _, p := range optPrefixes {
		if strings.HasPrefix(b, p) {
			return true
		}
	}
	return false
}

// baselineFiles maps each pinned file to its membership test.
var baselineFiles = []struct {
	name    string
	matches func(bench string) bool
}{
	{"BENCH_serve.json", isServeBench},
	{"BENCH_opt.json", isOptBench},
	{"BENCH_qon.json", func(b string) bool { return !isServeBench(b) && !isOptBench(b) }},
}

// measurement is one benchmark's pinned numbers.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// baseline is the schema of each BENCH_*.json file.
type baseline struct {
	// Comment documents the file for people reading the diff.
	Comment    string                 `json:"comment"`
	Benchmarks map[string]measurement `json:"benchmarks"`
}

// benchLine matches `BenchmarkRegFoo-8  30  12345 ns/op  678 B/op  9 allocs/op`.
var benchLine = regexp.MustCompile(`^(BenchmarkReg\w*)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ B/op\s+(\d+) allocs/op)?`)

func main() {
	update := flag.Bool("update", false, "rewrite the baseline files from this run")
	inject := flag.Float64("inject", 1.0, "multiply measured ns/op by this factor (CI self-test)")
	threshold := flag.Float64("threshold", 1.20, "fail when measured/baseline exceeds this ratio")
	flag.Parse()

	measured, err := runBenchmarks()
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no BenchmarkReg* benchmarks found — run from the repository root"))
	}
	for name, m := range measured {
		m.NsPerOp *= *inject
		measured[name] = m
	}

	var failures []string
	for _, file := range baselineFiles {
		part := map[string]measurement{}
		for name, m := range measured {
			if file.matches(name) {
				part[name] = m
			}
		}
		if *update {
			writeBaseline(file.name, part)
			continue
		}
		failures = append(failures, compare(file.name, part, *threshold)...)
	}
	if *update {
		return
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d failure(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: all benchmarks within threshold")
}

func writeBaseline(path string, measured map[string]measurement) {
	b := baseline{
		Comment: "benchdiff baseline: minimum ns/op and allocs/op of BenchmarkReg* " +
			"over 3 passes of -benchtime 300x -count 5; regenerate with `go run ./scripts/benchdiff -update`",
		Benchmarks: measured,
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: wrote %s (%d benchmarks)\n", path, len(measured))
}

// compare gates one partition against its baseline file and returns the
// accumulated failures (threshold breaches, unknown or vanished
// benchmarks).
func compare(path string, measured map[string]measurement, threshold float64) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("%w (create it with `go run ./scripts/benchdiff -update`)", err))
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}

	var failures []string
	for _, name := range sortedKeys(measured) {
		m := measured[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not in %s (run -update)", name, path))
			continue
		}
		nsRatio := m.NsPerOp / b.NsPerOp
		status := "ok"
		if nsRatio > threshold {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx)",
				name, m.NsPerOp, b.NsPerOp, nsRatio, threshold))
		}
		allocNote := ""
		if b.AllocsPerOp > 0 {
			allocRatio := float64(m.AllocsPerOp) / float64(b.AllocsPerOp)
			allocNote = fmt.Sprintf("  allocs %d vs %d", m.AllocsPerOp, b.AllocsPerOp)
			if allocRatio > threshold {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d (%.2fx > %.2fx)",
					name, m.AllocsPerOp, b.AllocsPerOp, allocRatio, threshold))
			}
		}
		fmt.Printf("%-34s %10.0f ns/op  (baseline %10.0f, %.2fx)%s  %s\n",
			name, m.NsPerOp, b.NsPerOp, nsRatio, allocNote, status)
	}
	for name := range base.Benchmarks {
		if _, ok := measured[name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: in %s but no longer measured", name, path))
		}
	}
	return failures
}

// benchPasses is how many separate go-test invocations the regression
// set runs: each pass walks the whole suite, so one benchmark's samples
// are spread minutes apart and its minimum spans the host's load
// swings instead of sharing a single regime.
const benchPasses = 3

// runBenchmarks executes the regression set benchPasses times and
// returns the minimum ns/op and allocs/op per benchmark across every
// count of every pass.
func runBenchmarks() (map[string]measurement, error) {
	measured := map[string]measurement{}
	for pass := 0; pass < benchPasses; pass++ {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", "^BenchmarkReg",
			"-benchmem", "-benchtime", "300x", "-count", "5", ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench: %w\n%s", err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			var allocs int64
			if m[3] != "" {
				allocs, _ = strconv.ParseInt(m[3], 10, 64)
			}
			cur, seen := measured[m[1]]
			if !seen || ns < cur.NsPerOp {
				cur.NsPerOp = ns
			}
			if !seen || allocs < cur.AllocsPerOp {
				cur.AllocsPerOp = allocs
			}
			measured[m[1]] = cur
		}
	}
	return measured, nil
}

func sortedKeys(m map[string]measurement) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
