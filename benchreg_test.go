package approxqo

import (
	"testing"

	"approxqo/internal/opt"
	"approxqo/internal/qon"
	"approxqo/internal/workload"
)

// Regression benchmarks: the fixed set scripts/benchdiff compares
// against the checked-in BENCH_qon.json baseline (>20% ns/op or allocs
// regression fails extended verify). Keep the set small and single-size
// — benchdiff runs them with -benchtime 30x -count 3 and takes the
// minimum, so each iteration must be stable and quick.

func regInstance(b *testing.B, n int) *qon.Instance {
	b.Helper()
	in, err := workload.Generate(workload.Params{N: n, Shape: workload.Random, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkRegSubsetDP pins the serial exact DP at n=10.
func BenchmarkRegSubsetDP(b *testing.B) {
	in := regInstance(b, 10)
	dp := opt.NewDP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Optimize(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegDPParallel pins the layered parallel DP at n=10.
func BenchmarkRegDPParallel(b *testing.B) {
	in := regInstance(b, 10)
	dp := opt.NewDPParallel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Optimize(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegGreedy pins the min-cost greedy heuristic at n=16.
func BenchmarkRegGreedy(b *testing.B) {
	in := regInstance(b, 16)
	g := opt.NewGreedy(opt.GreedyMinCost)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Optimize(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegCostEval pins one full QO_N cost evaluation at n=32.
func BenchmarkRegCostEval(b *testing.B) {
	in := regInstance(b, 32)
	z := make(qon.Sequence, in.N())
	for i := range z {
		z[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Evaluate(z)
	}
}
