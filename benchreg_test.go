package approxqo

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"approxqo/internal/classify"
	"approxqo/internal/cluster"
	"approxqo/internal/cluster/replica"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
	"approxqo/internal/server"
	"approxqo/internal/server/loadgen"
	"approxqo/internal/workload"
)

// Regression benchmarks: the fixed set scripts/benchdiff compares
// against the checked-in baselines — BenchmarkRegOpt* vs BENCH_opt.json,
// everything else vs BENCH_qon.json (>20% ns/op or allocs regression
// fails extended verify). Keep the set small and single-size
// — benchdiff runs them over 3 passes of -benchtime 300x -count 5 and
// takes the minimum, so each iteration must be stable and quick.

func regInstance(b *testing.B, n int) *qon.Instance {
	b.Helper()
	in, err := workload.Generate(workload.Params{N: n, Shape: workload.Random, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkRegSubsetDP pins the serial exact DP at n=10.
func BenchmarkRegSubsetDP(b *testing.B) {
	in := regInstance(b, 10)
	dp := opt.NewDP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Optimize(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegDPParallel pins the layered parallel DP at n=10.
func BenchmarkRegDPParallel(b *testing.B) {
	in := regInstance(b, 10)
	dp := opt.NewDPParallel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Optimize(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegGreedy pins the min-cost greedy heuristic at n=16.
func BenchmarkRegGreedy(b *testing.B) {
	in := regInstance(b, 16)
	g := opt.NewGreedy(opt.GreedyMinCost)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Optimize(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegCostEval pins one full QO_N cost evaluation at n=32.
func BenchmarkRegCostEval(b *testing.B) {
	in := regInstance(b, 32)
	z := make(qon.Sequence, in.N())
	for i := range z {
		z[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Evaluate(z)
	}
}

// The BenchmarkRegOpt* set below pins the tiered cost kernel itself and
// is compared against BENCH_opt.json (scripts/benchdiff partitions the
// regression set by the RegOpt prefix).

// BenchmarkRegOptAnnealMoves pins annealing at n=16 with a fixed
// 2000-move budget: each op is exactly 2000 moves through the Tier-1/
// Tier-2 kernel, so per-op ratios are per-move ratios.
func BenchmarkRegOptAnnealMoves(b *testing.B) {
	in := regInstance(b, 16)
	a := opt.NewAnnealing(opt.WithSeed(1), opt.WithIterations(2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Optimize(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegOptDPMask pins the scratch-converted subset DP at n=10.
// The mask count per op is fixed (one full 2^n sweep), so per-op ns and
// allocs ratios are per-mask ratios.
func BenchmarkRegOptDPMask(b *testing.B) {
	in := regInstance(b, 10)
	dp := opt.NewDP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Optimize(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegOptScratchMulAdd pins the pooled mutable accumulator on
// the DP inner-loop op pattern; BenchmarkRegOptImmutableMulAdd is the
// same chain through immutable num.Num values, kept side by side so the
// baseline file documents the scratch-vs-immutable gap.
func BenchmarkRegOptScratchMulAdd(b *testing.B) {
	x, y := num.Pow2(100), num.FromInt64(12345)
	s := num.NewScratch()
	defer s.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetInt64(1)
		for k := 0; k < 64; k++ {
			s.MulAdd(x, y)
		}
	}
}

func BenchmarkRegOptImmutableMulAdd(b *testing.B) {
	x, y := num.Pow2(100), num.FromInt64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := num.FromInt64(1)
		for k := 0; k < 64; k++ {
			acc = num.MulAdd(x, y, acc)
		}
	}
}

// The canonical-identity benchmarks below also pin into BENCH_opt.json
// (benchdiff routes the RegFingerprint/RegBatch prefixes there): they
// gate the cost the batch API adds on top of the cost kernel.

// BenchmarkRegFingerprint pins canonicalization at n=16: each op
// fingerprints one star, one chain and one clique instance — the star
// and chain finish in the first refinement rounds, the clique is the
// densest search the workload generator can produce.
func BenchmarkRegFingerprint(b *testing.B) {
	shapes := []workload.Shape{workload.Star, workload.Chain, workload.Clique}
	ins := make([]*qon.Instance, len(shapes))
	for i, sh := range shapes {
		in, err := workload.Generate(workload.Params{N: 16, Shape: sh, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			if qon.Fingerprint(in) == "" {
				b.Fatal("empty fingerprint")
			}
		}
	}
}

// BenchmarkRegClassify pins the adaptive router's per-request cost at
// n=16: each op extracts features and routes one star, one chain and
// one clique instance. The classifier sits on the serving hot path of
// every routed request, so its budget is a sliver of a request's —
// microseconds against the engine's milliseconds (see
// internal/classify's DESIGN entry). Pinned into BENCH_opt.json via the
// RegClassify benchdiff prefix.
func BenchmarkRegClassify(b *testing.B) {
	shapes := []workload.Shape{workload.Star, workload.Chain, workload.Clique}
	ins := make([]*qon.Instance, len(shapes))
	for i, sh := range shapes {
		in, err := workload.Generate(workload.Params{N: 16, Shape: sh, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = in
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			d := classify.Route(classify.Extract(in))
			if len(d.Tiers) == 0 {
				b.Fatal("empty routing decision")
			}
		}
	}
}

// BenchmarkRegBatchDedup pins steady-state batch throughput: one op is
// a 16-job POST /optimize/batch with planted relabeled duplicates,
// served end to end (decode, canonicalize, group, cache hit, remap,
// encode). The cache is warmed before the timer, so per-op cost is the
// dedup machinery itself, not the engine.
func BenchmarkRegBatchDedup(b *testing.B) {
	s, err := server.New(server.Config{MaxConcurrent: 4, DegradeAt: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	jobs, _, err := loadgen.PlantedBatch(9, 16)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(&server.BatchRequest{Jobs: jobs})
	if err != nil {
		b.Fatal(err)
	}
	serve := func() {
		req := httptest.NewRequest(http.MethodPost, "/optimize/batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("batch status %d: %s", w.Code, w.Body.Bytes())
		}
	}
	serve() // warm the certified-result cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve()
	}
}

// The BenchmarkRegServe* set pins the serving hot path itself (routing
// prefix RegServe → BENCH_serve.json): one op is one HTTP request
// served end to end through the real handler. RegServeHit and
// RegServeBatch are steady-state paths (warmed certified-result cache),
// RegServeMiss is the full-rung engine path with the cache disabled —
// together they gate decode, canonicalize, cache, remap and encode, not
// just the kernels underneath.

func regServeBody(b *testing.B, n int) []byte {
	b.Helper()
	in, err := workload.Generate(workload.Params{N: n, Shape: workload.Random, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"job": map[string]any{"instance": in}})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func regServeOnce(b *testing.B, h http.Handler, path string, body []byte) {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("%s status %d: %s", path, w.Code, w.Body.Bytes())
	}
}

// BenchmarkRegServeHit pins the cache-hit serve: an inline n=12
// instance POSTed to /optimize with the certified-result cache warmed,
// so each op is admission, decode, canonical identity, cache hit,
// remap and encode — the allocation budget the pooled serving path is
// accountable for.
func BenchmarkRegServeHit(b *testing.B) {
	s, err := server.New(server.Config{MaxConcurrent: 4, DegradeAt: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	body := regServeBody(b, 12)
	regServeOnce(b, h, "/optimize", body) // warm the certified-result cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regServeOnce(b, h, "/optimize", body)
	}
}

// BenchmarkRegServeMiss pins the cache-miss full-rung serve: caching is
// disabled, so every op runs the complete n=6 ensemble and renders the
// report — the cold-path cost a first-seen instance pays.
func BenchmarkRegServeMiss(b *testing.B) {
	s, err := server.New(server.Config{MaxConcurrent: 4, DegradeAt: 64, Seed: 1, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	body := regServeBody(b, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regServeOnce(b, h, "/optimize", body)
	}
}

// BenchmarkRegServeBatch pins the batch dedup serve on the RegServe
// gate: one op is a 16-job planted batch (relabeled duplicates) served
// from the warmed cache — the leader remap plus 15 mate remaps and the
// batch document encode.
func BenchmarkRegServeBatch(b *testing.B) {
	s, err := server.New(server.Config{MaxConcurrent: 4, DegradeAt: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	jobs, _, err := loadgen.PlantedBatch(9, 16)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(&server.BatchRequest{Jobs: jobs})
	if err != nil {
		b.Fatal(err)
	}
	regServeOnce(b, h, "/optimize/batch", body) // warm the certified-result cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regServeOnce(b, h, "/optimize/batch", body)
	}
}

// BenchmarkRegRingRoute pins the coordinator's per-request routing
// cost: one consistent-hash Lookup (primary + 2 replicas) over a
// 64-worker ring, with distinct fingerprint-shaped keys so the binary
// search and distinct-owner walk see realistic spread.
func BenchmarkRegRingRoute(b *testing.B) {
	ring := cluster.NewRing(0)
	for i := 0; i < 64; i++ {
		ring.Add("http://worker-" + strconv.Itoa(i) + ":8080")
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = "qon:fp-" + strconv.Itoa(i*2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ring.Lookup(keys[i%len(keys)], 3); len(got) != 3 {
			b.Fatalf("lookup returned %d workers, want 3", len(got))
		}
	}
}

// BenchmarkRegReplicaDigest pins the anti-entropy fingerprint cost: one
// digest pass of a 512-key cache over 64 vnode arcs — the per-round
// work a worker's /cache/digest endpoint does for the repair loop, and
// the reason repair stays cheap enough to price like a retry.
func BenchmarkRegReplicaDigest(b *testing.B) {
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = "qon:" + strconv.FormatUint(uint64(i)*2654435761, 16)
	}
	ranges := make([]replica.Range, 64)
	step := uint64(1) << 58 // 64 equal arcs covering the circle
	for i := range ranges {
		lo := uint64(i) * step
		ranges[i] = replica.Range{Lo: lo, Hi: lo + step}
	}
	ranges[len(ranges)-1].Hi = 0 // wrap: the last arc closes the circle
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := replica.DigestRanges(keys, ranges)
		if len(ds) != len(ranges) {
			b.Fatalf("digested %d arcs, want %d", len(ds), len(ranges))
		}
	}
}
