package approxqo

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end smoke tests: build and run each CLI the way a user would,
// asserting on the observable output. Skipped with -short.

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIQohardPair(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "inst.json")
	out := runCLI(t, "./cmd/qohard", "-mode", "pair", "-n", "12", "-json", jsonPath)
	for _, want := range []string{"certified pair: n=12", "K_{c,d}(α,n)", "YES exact optimum", "gap:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The exported instance is consumable by qopt.
	out = runCLI(t, "./cmd/qopt", "-file", jsonPath, "-algo", "greedy-min-size")
	if !strings.Contains(out, "greedy-min-size") || !strings.Contains(out, "instance: 12 relations") {
		t.Errorf("qopt on exported instance failed:\n%s", out)
	}
}

func TestCLIQohardHashAndSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := runCLI(t, "./cmd/qohard", "-mode", "hash", "-n", "6")
	if !strings.Contains(out, "Lemma 12 five-pipeline plan") || !strings.Contains(out, "gap: 2^") {
		t.Errorf("hash mode output:\n%s", out)
	}
	out = runCLI(t, "./cmd/qohard", "-mode", "sparse", "-n", "4", "-tau", "0.5")
	if !strings.Contains(out, "sparse f_N pair") || !strings.Contains(out, "gap: 2^") {
		t.Errorf("sparse mode output:\n%s", out)
	}
}

func TestCLIExperimentsQuickSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := runCLI(t, "./cmd/experiments", "-quick", "-only", "T5,A3")
	for _, want := range []string{"== T5:", "== A3:", "Lemma 3", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") || strings.Contains(out, "MISMATCH") {
		t.Errorf("violations in output:\n%s", out)
	}
	out = runCLI(t, "./cmd/experiments", "-list")
	if !strings.Contains(out, "T1") || !strings.Contains(out, "A3") {
		t.Errorf("experiment list:\n%s", out)
	}
}

func TestCLISqocp(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := runCLI(t, "./cmd/sqocp", "-items", "1,2,3")
	if !strings.Contains(out, "PARTITION [1 2 3]: YES") || !strings.Contains(out, "all three stages agree") {
		t.Errorf("sqocp output:\n%s", out)
	}
	out = runCLI(t, "./cmd/sqocp", "-items", "1,1,3")
	if !strings.Contains(out, "PARTITION [1 1 3]: NO") || !strings.Contains(out, "all three stages agree") {
		t.Errorf("sqocp NO output:\n%s", out)
	}
}

func TestCLIQoptCatalogExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := runCLI(t, "./cmd/qopt", "-catalog", "tpch-q3-like", "-algo", "subset-dp", "-explain")
	for _, want := range []string{"catalog query tpch-q3-like", "QO_N plan", "Scan R"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
