package approxqo

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end smoke tests: build and run each CLI the way a user would,
// asserting on the observable output. Skipped with -short.

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIQohardPair(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "inst.json")
	out := runCLI(t, "./cmd/qohard", "-mode", "pair", "-n", "12", "-out", jsonPath)
	for _, want := range []string{"certified pair: n=12", "K_{c,d}(α,n)", "YES exact optimum", "gap:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The exported instance is consumable by qopt.
	out = runCLI(t, "./cmd/qopt", "-file", jsonPath, "-algo", "greedy-min-size")
	if !strings.Contains(out, "greedy-min-size") || !strings.Contains(out, "instance: 12 relations") {
		t.Errorf("qopt on exported instance failed:\n%s", out)
	}
}

func TestCLIQohardHashAndSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := runCLI(t, "./cmd/qohard", "-mode", "hash", "-n", "6")
	if !strings.Contains(out, "Lemma 12 five-pipeline plan") || !strings.Contains(out, "gap: 2^") {
		t.Errorf("hash mode output:\n%s", out)
	}
	out = runCLI(t, "./cmd/qohard", "-mode", "sparse", "-n", "4", "-tau", "0.5")
	if !strings.Contains(out, "sparse f_N pair") || !strings.Contains(out, "gap: 2^") {
		t.Errorf("sparse mode output:\n%s", out)
	}
}

func TestCLIExperimentsQuickSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := runCLI(t, "./cmd/experiments", "-quick", "-only", "T5,A3")
	for _, want := range []string{"== T5:", "== A3:", "Lemma 3", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") || strings.Contains(out, "MISMATCH") {
		t.Errorf("violations in output:\n%s", out)
	}
	out = runCLI(t, "./cmd/experiments", "-list")
	if !strings.Contains(out, "T1") || !strings.Contains(out, "A3") {
		t.Errorf("experiment list:\n%s", out)
	}
}

func TestCLISqocp(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := runCLI(t, "./cmd/sqocp", "-items", "1,2,3")
	if !strings.Contains(out, "PARTITION [1 2 3]: YES") || !strings.Contains(out, "all three stages agree") {
		t.Errorf("sqocp output:\n%s", out)
	}
	out = runCLI(t, "./cmd/sqocp", "-items", "1,1,3")
	if !strings.Contains(out, "PARTITION [1 1 3]: NO") || !strings.Contains(out, "all three stages agree") {
		t.Errorf("sqocp NO output:\n%s", out)
	}
}

func TestCLIUnifiedJSONFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	// Acceptance check: qopt -json emits an engine.Report with wall
	// time and a positive cost-eval count for every optimizer that ran.
	out := runCLI(t, "./cmd/qopt", "-shape", "chain", "-n", "8", "-json")
	var rep struct {
		Best *struct {
			Winner string `json:"winner"`
		} `json:"best"`
		Runs []struct {
			Name   string  `json:"name"`
			WallMS float64 `json:"wall_ms"`
			Stats  struct {
				CostEvals int64 `json:"cost_evals"`
			} `json:"stats"`
			Err string `json:"error,omitempty"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("qopt -json is not valid JSON: %v\n%s", err, out)
	}
	if rep.Best == nil || rep.Best.Winner == "" {
		t.Errorf("qopt -json has no winner:\n%s", out)
	}
	if len(rep.Runs) == 0 {
		t.Fatalf("qopt -json has no runs:\n%s", out)
	}
	for _, run := range rep.Runs {
		if run.Err != "" {
			continue
		}
		if run.Stats.CostEvals <= 0 {
			t.Errorf("optimizer %s ran with cost_evals=%d", run.Name, run.Stats.CostEvals)
		}
	}

	out = runCLI(t, "./cmd/sqocp", "-items", "1,2,3", "-json")
	var sq map[string]any
	if err := json.Unmarshal([]byte(out), &sq); err != nil {
		t.Fatalf("sqocp -json is not valid JSON: %v\n%s", err, out)
	}
	if agree, _ := sq["stages_agree"].(bool); !agree {
		t.Errorf("sqocp -json stages_agree false:\n%s", out)
	}

	out = runCLI(t, "./cmd/qohard", "-mode", "pair", "-n", "12", "-json")
	var qh map[string]any
	if err := json.Unmarshal([]byte(out), &qh); err != nil {
		t.Fatalf("qohard -json is not valid JSON: %v\n%s", err, out)
	}
	if _, ok := qh["gap_log2"]; !ok {
		t.Errorf("qohard -json missing gap_log2:\n%s", out)
	}
}

func TestCLIQoptChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	// A corrupted optimizer must be quarantined while the rest of the
	// ensemble carries the run to a certified result.
	out := runCLI(t, "./cmd/qopt", "-shape", "chain", "-n", "8", "-json",
		"-chaos", "wrongcost:greedy-min-size")
	var rep struct {
		Best *struct {
			Winner    string `json:"winner"`
			Certified bool   `json:"certified"`
		} `json:"best"`
		Quarantined []string `json:"quarantined"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("qopt -chaos -json is not valid JSON: %v\n%s", err, out)
	}
	if rep.Best == nil || !rep.Best.Certified || rep.Best.Winner == "greedy-min-size" {
		t.Errorf("chaos run best = %+v", rep.Best)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "greedy-min-size" {
		t.Errorf("quarantined = %v, want [greedy-min-size]", rep.Quarantined)
	}

	// When every optimizer is adversarial, the command fails with a
	// structured error document, not unparseable text.
	cmd := exec.Command("go", "run", "./cmd/qopt",
		"-shape", "chain", "-n", "6", "-json", "-chaos", "error:*")
	out2, err := cmd.Output()
	if err == nil {
		t.Fatalf("all-adversarial run should exit non-zero:\n%s", out2)
	}
	var doc struct {
		Error struct {
			Kind    string `json:"kind"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if jerr := json.Unmarshal(out2, &doc); jerr != nil {
		t.Fatalf("failure output is not a JSON error doc: %v\n%s", jerr, out2)
	}
	if doc.Error.Kind != "all_failed" || doc.Error.Message == "" {
		t.Errorf("error doc = %+v", doc)
	}
}

func TestCLIQoptCatalogExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := runCLI(t, "./cmd/qopt", "-catalog", "tpch-q3-like", "-algo", "subset-dp", "-explain")
	for _, want := range []string{"catalog query tpch-q3-like", "QO_N plan", "Scan R"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
