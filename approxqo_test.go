package approxqo

import (
	"context"

	"testing"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/opt"
)

var ctx = context.Background()

// The facade must expose a working end-to-end path: generate a
// workload, optimize it, run a reduction, check a certificate.
func TestFacadeEndToEnd(t *testing.T) {
	in, err := GenerateWorkload(WorkloadParams{N: 8, Shape: "chain", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	best, err := NewDP().Optimize(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Exact {
		t.Error("subset DP should certify exactness")
	}
	for _, o := range Heuristics(WithSeed(1)) {
		r, err := o.Optimize(ctx, in)
		if err != nil {
			continue
		}
		if r.Cost.Less(best.Cost) {
			t.Errorf("%s beat the certified optimum", o.Name())
		}
	}

	yes, no := cliquered.YesNoPair(12, 0.75, 0.25)
	params := core.FNParams{A: 24, OmegaYes: yes.Omega, OmegaNo: no.Omega}
	fnYes, err := FN(yes.G, params)
	if err != nil {
		t.Fatal(err)
	}
	fnNo, err := FN(no.G, params)
	if err != nil {
		t.Fatal(err)
	}
	yesOpt, err := NewDP().Optimize(ctx, fnYes.QON)
	if err != nil {
		t.Fatal(err)
	}
	noOpt, err := NewDP().Optimize(ctx, fnNo.QON)
	if err != nil {
		t.Fatal(err)
	}
	cert := &GapCertificate{
		Name:        "facade",
		YesBound:    fnYes.K,
		NoBound:     fnNo.NoLowerBound,
		YesMeasured: yesOpt.Cost,
		NoMeasured:  noOpt.Cost,
		NoExact:     true,
	}
	if err := cert.Check(); err != nil {
		t.Fatal(err)
	}
}

// The facade must expose the engine surface: a supervised ensemble run
// returning a structured report with per-run instrumentation.
func TestFacadeEngineRun(t *testing.T) {
	in, err := GenerateWorkload(WorkloadParams{N: 9, Shape: "star", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ensemble := append(Heuristics(WithSeed(2)), NewDP())
	rep, err := NewEngine(WithoutEarlyExit()).Run(ctx, in, ensemble...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil || len(rep.Best.Sequence) != 9 {
		t.Fatalf("engine report best = %+v", rep.Best)
	}
	if len(rep.Runs) != len(ensemble) {
		t.Fatalf("engine report has %d runs, want %d", len(rep.Runs), len(ensemble))
	}
	for _, run := range rep.Runs {
		if run.Err == "" && run.Stats.CostEvals == 0 {
			t.Errorf("run %s reported no cost evaluations", run.Name)
		}
	}
}

// The facade must expose the fault-injection and certification surface:
// wrap an optimizer from a parsed chaos spec, watch the engine
// quarantine it, and re-audit the merged result independently.
func TestFacadeChaosAndCertification(t *testing.T) {
	in, err := GenerateWorkload(WorkloadParams{N: 7, Shape: "chain", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ensemble, err := ApplyChaosSpec("wrongcost:greedy-min-size",
		[]Optimizer{NewGreedy(opt.GreedyMinSize), NewGreedy(opt.GreedyMinCost)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewEngine().Run(ctx, in, ensemble...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil || !rep.Best.Certified {
		t.Fatalf("best = %+v", rep.Best)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "greedy-min-size" {
		t.Fatalf("quarantined = %v", rep.Quarantined)
	}
	cert, err := CertifyQON(in, rep.Best.Sequence, rep.Best.Cost, rep.Best.Exact)
	if err != nil {
		t.Fatalf("merged result fails facade re-audit: %v", err)
	}
	if !cert.Recomputed.Equal(rep.Best.Cost) {
		t.Fatal("recomputed cost differs from reported cost")
	}
}

func TestFacadeExperimentCatalog(t *testing.T) {
	cat := Experiments()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d experiments, want 14", len(cat))
	}
	ids := map[string]bool{}
	for _, e := range cat {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
}

func TestFacadeTheoremPipelines(t *testing.T) {
	f := &Formula{NumVars: 2}
	f.AddClause(1, 2)
	f.AddClause(-1, 2)
	r9, err := Theorem9(f, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r9.Satisfiable {
		t.Error("Theorem9 misjudged a satisfiable formula")
	}
	r15, err := Theorem15(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r15.WitnessPlan == nil {
		t.Error("Theorem15 produced no witness plan")
	}
}
