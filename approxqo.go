// Package approxqo reproduces "On the Complexity of Approximate Query
// Optimization" (Chatterji, Evani, Ganguly, Yemmanuru — PODS 2002) as a
// working Go library: the QO_N and QO_H join-ordering cost models, the
// hardness reductions f_N, f_H and their sparse variants, the appendix's
// SQO−CP/SPPCS NP-completeness chain, exact and heuristic join-order
// optimizers, and an experiment harness that regenerates a table or
// figure for every theorem (see DESIGN.md and EXPERIMENTS.md).
//
// This root package is a facade: it re-exports the library's primary
// entry points so that downstream code can depend on a single import.
// The implementation lives under internal/ (one package per subsystem)
// and the runnable entry points under cmd/ and examples/.
package approxqo

import (
	"approxqo/internal/bushy"
	"approxqo/internal/certify"
	"approxqo/internal/chaos"
	"approxqo/internal/classify"
	"approxqo/internal/cliquered"
	"approxqo/internal/cluster"
	"approxqo/internal/cluster/replica"
	"approxqo/internal/core"
	"approxqo/internal/engine"
	"approxqo/internal/experiments"
	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/plan"
	"approxqo/internal/qoh"
	"approxqo/internal/qon"
	"approxqo/internal/sat"
	"approxqo/internal/server"
	"approxqo/internal/sqocp"
	"approxqo/internal/stats"
	"approxqo/internal/trace"
	"approxqo/internal/workload"
)

// Re-exported core types. See the internal packages for full
// documentation.
type (
	// Num is an arbitrary-magnitude non-negative number (costs such as
	// α^{n²} are routine for the reductions).
	Num = num.Num
	// Graph is an undirected graph with exact max-clique search.
	Graph = graph.Graph
	// Formula is a CNF formula with a DPLL solver.
	Formula = sat.Formula
	// QONInstance is the nested-loops join-ordering problem of §2.1.
	QONInstance = qon.Instance
	// QOHInstance is the pipelined hash-join problem of §2.2.
	QOHInstance = qoh.Instance
	// FNInstance is the §4 reduction output (CLIQUE → QO_N).
	FNInstance = core.FNInstance
	// FHInstance is the §5 reduction output (⅔CLIQUE → QO_H).
	FHInstance = core.FHInstance
	// GapCertificate records promised vs measured hardness gaps.
	GapCertificate = core.GapCertificate
	// Optimizer is the join-order optimizer interface: Optimize takes a
	// context and an instance and returns the best plan found (anytime
	// heuristics return their best-so-far when the context expires).
	Optimizer = opt.Optimizer
	// OptimizerOption configures optimizer constructors (see WithSeed,
	// WithMaxRelations, WithStats, ...).
	OptimizerOption = opt.Option
	// Result is an optimizer's outcome: sequence, cost, exactness.
	Result = opt.Result
	// Engine supervises concurrent ensemble runs over one instance.
	Engine = engine.Engine
	// EngineReport is the structured per-run outcome of an engine run.
	EngineReport = engine.Report
	// Stats is the per-run instrumentation sink (cost evaluations, DP
	// subsets, annealing moves) threaded through the cost models.
	Stats = stats.Stats
	// StatsSnapshot is an immutable copy of a Stats sink's counters.
	StatsSnapshot = stats.Snapshot
	// Tracer collects hierarchical spans and exports Chrome trace_event
	// JSON; Span is one timed region of a traced run.
	Tracer = trace.Tracer
	Span   = trace.Span
	// MetricsRegistry is the named counter/gauge/histogram sink the
	// engine publishes ensemble aggregates into.
	MetricsRegistry = trace.Registry
	// MetricsSnapshot is a point-in-time copy of a whole registry.
	MetricsSnapshot = trace.RegistrySnapshot
	// StarQuery is the appendix's SQO−CP star-query instance.
	StarQuery = sqocp.Star
	// WorkloadParams parameterizes realistic random query generation.
	WorkloadParams = workload.Params
	// ExperimentOptions tunes the experiment harness.
	ExperimentOptions = experiments.Options
	// Certificate records an auditor's verdict on one optimizer result:
	// the claimed cost, the independently recomputed cost, and (for
	// exact-flagged results) the witness bound it was checked against.
	Certificate = certify.Certificate
	// ChaosFault names an injectable fault (panic, stall, wrongcost,
	// invalidplan, error, leak).
	ChaosFault = chaos.Fault
	// ChaosRule targets one fault at matching optimizers in a spec.
	ChaosRule = chaos.Rule
	// EngineHealth is the engine's cheap health probe: run/failure
	// counts, quarantine depth and recent error kinds (qod's /readyz).
	EngineHealth = engine.Health
	// Server is the daemon's HTTP serving layer (admission control,
	// degradation ladder, circuit breaker, graceful drain); ServerConfig
	// configures it and ServerRequest/ServerResult are the /optimize
	// wire documents.
	Server        = server.Server
	ServerConfig  = server.Config
	ServerRequest = server.Request
	ServerResult  = server.Result
	// ServerJob is the unified tagged job object shared by /optimize and
	// /optimize/batch; ServerBatchRequest/ServerBatchResponse are the
	// /optimize/batch wire documents and ServerBatchJobResult one job's
	// slot in the response.
	ServerJob            = server.Job
	ServerBatchRequest   = server.BatchRequest
	ServerBatchResponse  = server.BatchResponse
	ServerBatchJobResult = server.BatchJobResult
	// Coordinator is the fault-tolerant cluster front for a pool of qod
	// workers: fingerprint-affinity routing over a consistent-hash ring,
	// health-gated failover under a global retry budget, and
	// tail-latency hedging (qod -coordinate). ClusterConfig configures
	// it.
	Coordinator   = cluster.Coordinator
	ClusterConfig = cluster.Config
	// ReplicaEntry is one replicated certified cache entry (key +
	// canonical-space report), re-validated at every trust boundary;
	// ReplicaRange is a half-open wrapping arc of the hash circle the
	// handoff and anti-entropy paths address keyspace by.
	ReplicaEntry = replica.Entry
	ReplicaRange = replica.Range
	// NetFault names an injectable network fault (drop, delay, 5xx,
	// reset, truncate); NetRule targets one at matching workers.
	NetFault = chaos.NetFault
	NetRule  = chaos.NetRule
	// RouteFeatures is the relabel-invariant structural feature vector
	// the adaptive router extracts from a QO_N instance; RouteDecision
	// is the router's verdict (class, ensemble tiers in shed order,
	// budget fraction, reason). RouteClass and RouteTier name the
	// classes and ensemble tiers.
	RouteFeatures = classify.Features
	RouteDecision = classify.Decision
	RouteClass    = classify.Class
	RouteTier     = classify.Tier
	// WorkloadSpec is the JSON workload-family grammar shared by the
	// server's request decoder, loadgen and the ratio harness: basic
	// topologies plus the paper-grounded families (skewed-star,
	// chain-selective, sparse-em, cliquered-yes/no).
	WorkloadSpec = workload.Spec
)

// Reductions and pipelines.
var (
	// FN applies the §4 reduction from a CLIQUE instance to QO_N.
	FN = core.FN
	// FH applies the §5 reduction from a ⅔CLIQUE instance to QO_H.
	FH = core.FH
	// SparseFN and SparseFH are the §6 sparse-query-graph variants.
	SparseFN = core.SparseFN
	SparseFH = core.SparseFH
	// Theorem9 and Theorem15 run the full 3SAT chains.
	Theorem9  = core.Theorem9
	Theorem15 = core.Theorem15
	// Lemma3 and Lemma4 are the 3SAT → CLIQUE-variant reductions.
	Lemma3 = cliquered.Lemma3
	Lemma4 = cliquered.Lemma4
	// GenerateWorkload builds realistic random QO_N instances.
	GenerateWorkload = workload.Generate
	// DecodeWorkloadSpec parses and validates one JSON family spec;
	// WorkloadFamilies lists every generatable population name.
	DecodeWorkloadSpec = workload.DecodeSpec
	WorkloadFamilies   = workload.Families
	// Experiments returns the reproduction's experiment catalog.
	Experiments = experiments.All
)

// Adaptive ensemble routing (see internal/classify and README
// §Adaptive routing).
var (
	// ExtractRouteFeatures computes the relabel-invariant feature vector
	// of a QO_N instance; RouteInstance maps features to a routing
	// decision (a pure function: equal features, equal decisions).
	ExtractRouteFeatures = classify.Extract
	RouteInstance        = classify.Route
	// RouteEnsemble materializes a decision into engine-ready optimizers
	// plus skip records for the tiers the decision left out.
	RouteEnsemble = classify.Ensemble
	// AllRouteTiers is the full-ensemble tier set in shed order.
	AllRouteTiers = classify.AllTiers
)

// Optimizer constructors.
var (
	// NewDP is the exact subset dynamic program (left-deep optimal).
	NewDP = opt.NewDP
	// NewDPParallel is the same DP parallelized across cores.
	NewDPParallel = opt.NewDPParallel
	// NewDPNoCross is the exact DP over cartesian-product-free orders.
	NewDPNoCross = opt.NewDPNoCross
	// NewExhaustive enumerates all join sequences (small n).
	NewExhaustive = opt.NewExhaustive
	// NewKBZ is the Ibaraki–Kameda rank algorithm for tree queries.
	NewKBZ = opt.NewKBZ
	// NewGreedy builds greedy optimizers (opt.GreedyMinSize/MinCost).
	NewGreedy = opt.NewGreedy
	// NewAnnealing is simulated annealing over permutations.
	NewAnnealing = opt.NewAnnealing
	// Heuristics returns the standard polynomial-time ensemble.
	Heuristics = opt.Heuristics
	// BestOf runs several optimizers sequentially and keeps the cheapest.
	BestOf = opt.BestOf
	// QOHBest runs the QO_H plan-search ensemble.
	QOHBest = opt.QOHBest
)

// Optimizer options (passed to the constructors above).
var (
	// WithSeed seeds an optimizer's randomized components.
	WithSeed = opt.WithSeed
	// WithMaxRelations bounds the instance size exact DPs accept.
	WithMaxRelations = opt.WithMaxRelations
	// WithStats attaches an instrumentation sink to an optimizer.
	WithStats = opt.WithStats
	// WithIterations, WithSamples and WithRestarts tune the randomized
	// optimizers' search effort.
	WithIterations = opt.WithIterations
	WithSamples    = opt.WithSamples
	WithRestarts   = opt.WithRestarts
)

// Supervised ensemble engine.
var (
	// NewEngine builds a supervised ensemble runner; see engine.Options
	// re-exported below.
	NewEngine = engine.New
	// NewServer builds the daemon's serving layer from a ServerConfig
	// (cmd/qod wires it to an address and the signal machinery).
	NewServer = server.New
	// WithRunTimeout bounds each optimizer run individually.
	WithRunTimeout = engine.WithRunTimeout
	// WithGrace sets how long the engine waits for straggler results
	// after cancellation before abandoning them.
	WithGrace = engine.WithGrace
	// WithoutEarlyExit keeps all runs going after an exact result.
	WithoutEarlyExit = engine.WithoutEarlyExit
	// WithRetries bounds how many times a failing run is retried with a
	// fresh seed before the engine gives up on it.
	WithRetries = engine.WithRetries
	// WithQuarantineAfter sets how many failures bench an optimizer.
	WithQuarantineAfter = engine.WithQuarantineAfter
	// QOHSearchers returns the engine-ready QO_H plan-search ensemble.
	QOHSearchers = engine.QOHSearchers
)

// Observability: tracing, metrics and profiling (see internal/trace).
var (
	// NewTracer builds a span collector for engine.WithTracer.
	NewTracer = trace.New
	// NewMetricsRegistry builds a metrics sink for engine.WithMetrics.
	NewMetricsRegistry = trace.NewRegistry
	// WithTracer and WithMetrics attach the observability sinks to an
	// engine; nil sinks disable instrumentation with no branching.
	WithTracer  = engine.WithTracer
	WithMetrics = engine.WithMetrics
	// StartProfiles starts pprof CPU/heap capture (either path may be
	// empty); stop with the returned Profiler's Stop.
	StartProfiles = trace.StartProfiles
)

// Certification and fault injection.
var (
	// CertifyQON and CertifyQOH independently audit an optimizer result:
	// permutation validity, exact cost recomputation, and a witness bound
	// for exact-flagged claims.
	CertifyQON = certify.QON
	CertifyQOH = certify.QOH
	// ChaosWrap wraps an optimizer with a deterministic injected fault.
	ChaosWrap = chaos.Wrap
	// ParseChaosSpec parses the fault[:optimizer],... grammar used by
	// qopt -chaos.
	ParseChaosSpec = chaos.ParseSpec
	// ApplyChaosSpec parses a spec and wraps the matching optimizers.
	ApplyChaosSpec = chaos.ApplySpec
	// NewCoordinator builds the cluster coordinator over a worker pool
	// (see ClusterConfig).
	NewCoordinator = cluster.New
	// NewChaosTransport wraps an http.RoundTripper with deterministic
	// network-fault injection; ParseNetSpec parses the
	// fault[:worker],... grammar used by qod -net-chaos.
	NewChaosTransport = chaos.NewTransport
	ParseNetSpec      = chaos.ParseNetSpec
)

// Structured error taxonomy surfaced by the engine. Test with errors.Is.
var (
	// ErrUncertified marks a result that failed the certification audit.
	ErrUncertified = engine.ErrUncertified
	// ErrQuarantined marks an optimizer benched after repeated failures;
	// its prior contributions are discarded from the merge.
	ErrQuarantined = engine.ErrQuarantined
	// ErrInvalidPlan marks a plan that is not a valid permutation (or,
	// for QO_H, has malformed pipeline breaks).
	ErrInvalidPlan = engine.ErrInvalidPlan
	// ErrNoOptimizers, ErrNilInstance and ErrAllFailed are the engine's
	// input- and outcome-level failures.
	ErrNoOptimizers = engine.ErrNoOptimizers
	ErrNilInstance  = engine.ErrNilInstance
	ErrAllFailed    = engine.ErrAllFailed
)

// Canonical instance identity (see DESIGN.md §Canonical identity): a
// graph-invariant fingerprint plus a deterministic relabeling, so any
// two relabelings of one instance agree byte-for-byte.
var (
	// FingerprintQON and FingerprintQOH return the model-tagged canonical
	// fingerprint of an instance — equal exactly for relabelings of the
	// same instance. The qod result cache keys on it.
	FingerprintQON = qon.Fingerprint
	FingerprintQOH = qoh.Fingerprint
	// CanonicalizeQON and CanonicalizeQOH return the canonical relabeling
	// of an instance together with the permutation pi that produced it
	// (pi[v] = canonical label of input label v).
	CanonicalizeQON = qon.Canonicalize
	CanonicalizeQOH = qoh.Canonicalize
	// RelabelQON and RelabelQOH apply an explicit relation relabeling —
	// the cost models are invariant under them (metamorphic suites).
	RelabelQON = qon.Relabel
	RelabelQOH = qoh.Relabel
)

// Extensions and tooling.
var (
	// OptimizeBushy finds an optimal bushy join tree (exact DPsub).
	OptimizeBushy = bushy.Optimize
	// ExplainQON, ExplainQOH and ExplainBushy render plans as
	// EXPLAIN-style operator trees.
	ExplainQON   = plan.ExplainQON
	ExplainQOH   = plan.ExplainQOH
	ExplainBushy = plan.ExplainBushy
	// Catalog returns the benchmark-shaped named queries.
	Catalog = workload.Catalog
)

// BushyTree is a bushy join tree (see internal/bushy).
type BushyTree = bushy.Tree
